//! Generic table with a primary key and ordered secondary indexes.
//!
//! Invariant (property-tested): after any sequence of upsert/remove, every
//! secondary index contains exactly one entry per live row, keyed by the
//! current extractor output. Index lookups therefore always agree with a
//! full scan.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A single indexed value. Composite index keys are `Vec<Value>` compared
/// lexicographically (`BTreeMap` over `IndexKey` gives range scans for
/// free, which is what "add an index in MySQL" buys the paper).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    U64(u64),
    I64(i64),
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Composite index key.
pub type IndexKey = Vec<Value>;

type Extractor<K, R> = Box<dyn Fn(&K, &R) -> IndexKey + Send + Sync>;

struct IndexDef<K, R> {
    name: String,
    extract: Extractor<K, R>,
    map: BTreeMap<IndexKey, BTreeSet<K>>,
}

impl<K, R> IndexDef<K, R>
where
    K: Ord + Clone,
{
    fn insert(&mut self, key: &K, row: &R) {
        let ik = (self.extract)(key, row);
        self.map.entry(ik).or_default().insert(key.clone());
    }

    fn remove(&mut self, key: &K, row: &R) {
        let ik = (self.extract)(key, row);
        if let Some(set) = self.map.get_mut(&ik) {
            set.remove(key);
            if set.is_empty() {
                self.map.remove(&ik);
            }
        }
    }
}

impl<K: fmt::Debug, R> fmt::Debug for IndexDef<K, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Index({}, {} keys)", self.name, self.map.len())
    }
}

/// A typed table: `BTreeMap` primary storage plus named secondary indexes.
pub struct Table<K, R> {
    name: String,
    rows: BTreeMap<K, R>,
    indexes: Vec<IndexDef<K, R>>,
}

impl<K: fmt::Debug, R> fmt::Debug for Table<K, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("rows", &self.rows.len())
            .field("indexes", &self.indexes)
            .finish()
    }
}

impl<K: Ord + Clone, R: Clone> Table<K, R> {
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            rows: BTreeMap::new(),
            indexes: Vec::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add an ordered secondary index; existing rows are back-filled (the
    /// paper's whole point is being *able* to add indexes).
    pub fn add_index(
        &mut self,
        name: impl Into<String>,
        extract: impl Fn(&K, &R) -> IndexKey + Send + Sync + 'static,
    ) {
        let name = name.into();
        assert!(
            self.index_pos(&name).is_none(),
            "duplicate index name {name:?} on table {:?}",
            self.name
        );
        let mut def = IndexDef {
            name,
            extract: Box::new(extract),
            map: BTreeMap::new(),
        };
        for (k, r) in &self.rows {
            def.insert(k, r);
        }
        self.indexes.push(def);
    }

    fn index_pos(&self, name: &str) -> Option<usize> {
        self.indexes.iter().position(|i| i.name == name)
    }

    fn index(&self, name: &str) -> &IndexDef<K, R> {
        let pos = self
            .index_pos(name)
            .unwrap_or_else(|| panic!("no index {name:?} on table {:?}", self.name));
        &self.indexes[pos]
    }

    /// Insert or replace a row; returns the previous row if any.
    pub fn upsert(&mut self, key: K, row: R) -> Option<R> {
        let old = self.rows.insert(key.clone(), row.clone());
        if let Some(ref old_row) = old {
            for idx in &mut self.indexes {
                idx.remove(&key, old_row);
            }
        }
        for idx in &mut self.indexes {
            idx.insert(&key, &row);
        }
        old
    }

    /// Remove a row; returns it if present.
    pub fn remove(&mut self, key: &K) -> Option<R> {
        let row = self.rows.remove(key)?;
        for idx in &mut self.indexes {
            idx.remove(key, &row);
        }
        Some(row)
    }

    pub fn get(&self, key: &K) -> Option<&R> {
        self.rows.get(key)
    }

    pub fn contains(&self, key: &K) -> bool {
        self.rows.contains_key(key)
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Full scan in primary-key order.
    pub fn scan(&self) -> impl Iterator<Item = (&K, &R)> {
        self.rows.iter()
    }

    /// Point lookup via a secondary index: all primary keys whose index key
    /// equals `key`, in primary-key order.
    pub fn select(&self, index: &str, key: &IndexKey) -> Vec<K> {
        self.index(index)
            .map
            .get(key)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Full traversal in index order: (index key, primary key).
    pub fn index_scan(&self, index: &str) -> Vec<(IndexKey, K)> {
        self.index(index)
            .map
            .iter()
            .flat_map(|(ik, set)| set.iter().map(move |k| (ik.clone(), k.clone())))
            .collect()
    }

    /// Range scan over an index: entries with `lo <= index key < hi`, in
    /// index order.
    pub fn index_range(&self, index: &str, lo: &IndexKey, hi: &IndexKey) -> Vec<(IndexKey, K)> {
        self.index(index)
            .map
            .range(lo.clone()..hi.clone())
            .flat_map(|(ik, set)| set.iter().map(move |k| (ik.clone(), k.clone())))
            .collect()
    }

    /// Consistency check: every secondary-index entry resolves to a live
    /// row whose extractor still produces that index key, and every live
    /// row appears in every index exactly once. Returns the first
    /// violation found (scrub calls this after repairing the catalog).
    pub fn verify_indexes(&self) -> Result<(), String>
    where
        K: fmt::Debug,
    {
        for idx in &self.indexes {
            let mut indexed = 0usize;
            for (ik, set) in &idx.map {
                if set.is_empty() {
                    return Err(format!(
                        "table {:?} index {:?}: empty key set for {ik:?}",
                        self.name, idx.name
                    ));
                }
                for key in set {
                    indexed += 1;
                    let Some(row) = self.rows.get(key) else {
                        return Err(format!(
                            "table {:?} index {:?}: entry {key:?} has no row",
                            self.name, idx.name
                        ));
                    };
                    let expect = (idx.extract)(key, row);
                    if expect != *ik {
                        return Err(format!(
                            "table {:?} index {:?}: entry {key:?} filed under \
                             {ik:?} but extractor says {expect:?}",
                            self.name, idx.name
                        ));
                    }
                }
            }
            if indexed != self.rows.len() {
                return Err(format!(
                    "table {:?} index {:?}: {indexed} entries for {} rows",
                    self.name,
                    idx.name,
                    self.rows.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Row {
        path: String,
        tape: u64,
        seq: u64,
    }

    fn table() -> Table<u64, Row> {
        let mut t = Table::new("objects");
        t.add_index("by_path", |_, r: &Row| vec![r.path.as_str().into()]);
        t.add_index("by_tape_seq", |_, r: &Row| {
            vec![r.tape.into(), r.seq.into()]
        });
        t
    }

    fn row(path: &str, tape: u64, seq: u64) -> Row {
        Row {
            path: path.to_string(),
            tape,
            seq,
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut t = table();
        assert!(t.upsert(1, row("/a", 0, 0)).is_none());
        assert_eq!(t.get(&1).unwrap().path, "/a");
        assert_eq!(t.len(), 1);
        let old = t.remove(&1).unwrap();
        assert_eq!(old.path, "/a");
        assert!(t.is_empty());
        assert!(t.remove(&1).is_none());
    }

    #[test]
    fn select_by_secondary_key() {
        let mut t = table();
        t.upsert(1, row("/a", 5, 2));
        t.upsert(2, row("/b", 5, 1));
        t.upsert(3, row("/a", 6, 0));
        assert_eq!(t.select("by_path", &vec!["/a".into()]), vec![1, 3]);
        assert!(t.select("by_path", &vec!["/zzz".into()]).is_empty());
        // empty-table select is fine too
        let empty = table();
        assert!(empty.select("by_path", &vec!["/a".into()]).is_empty());
    }

    #[test]
    fn index_scan_orders_by_composite_key() {
        let mut t = table();
        t.upsert(1, row("/a", 5, 2));
        t.upsert(2, row("/b", 5, 1));
        t.upsert(3, row("/c", 4, 9));
        let order: Vec<u64> = t
            .index_scan("by_tape_seq")
            .into_iter()
            .map(|(_, k)| k)
            .collect();
        assert_eq!(order, vec![3, 2, 1]); // (4,9) < (5,1) < (5,2)
    }

    #[test]
    fn upsert_moves_index_entries() {
        let mut t = table();
        t.upsert(1, row("/a", 5, 2));
        t.upsert(1, row("/renamed", 7, 0));
        assert!(t.select("by_path", &vec!["/a".into()]).is_empty());
        assert_eq!(t.select("by_path", &vec!["/renamed".into()]), vec![1]);
        let order: Vec<u64> = t
            .index_scan("by_tape_seq")
            .into_iter()
            .map(|(_, k)| k)
            .collect();
        assert_eq!(order, vec![1]);
    }

    #[test]
    fn add_index_backfills() {
        let mut t: Table<u64, Row> = Table::new("t");
        t.upsert(1, row("/a", 1, 1));
        t.upsert(2, row("/b", 0, 0));
        t.add_index("late", |_, r: &Row| vec![r.tape.into(), r.seq.into()]);
        let order: Vec<u64> = t.index_scan("late").into_iter().map(|(_, k)| k).collect();
        assert_eq!(order, vec![2, 1]);
    }

    #[test]
    fn index_range_filters() {
        let mut t = table();
        for i in 0..10u64 {
            t.upsert(i, row(&format!("/f{i}"), i / 3, i % 3));
        }
        let hits = t.index_range(
            "by_tape_seq",
            &vec![1u64.into(), 0u64.into()],
            &vec![2u64.into(), 0u64.into()],
        );
        // tape 1 only: keys 3,4,5
        let keys: Vec<u64> = hits.into_iter().map(|(_, k)| k).collect();
        assert_eq!(keys, vec![3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "no index")]
    fn unknown_index_panics() {
        let t = table();
        let _ = t.select("nope", &vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate index")]
    fn duplicate_index_rejected() {
        let mut t = table();
        t.add_index("by_path", |_, _r: &Row| vec![]);
    }

    #[test]
    fn verify_indexes_accepts_consistent_table() {
        let mut t = table();
        for i in 0..10u64 {
            t.upsert(i, row(&format!("/f{i}"), i / 3, i % 3));
        }
        t.remove(&4);
        t.upsert(7, row("/moved", 9, 9));
        assert_eq!(t.verify_indexes(), Ok(()));
    }

    #[test]
    fn verify_indexes_catches_deliberate_corruption() {
        // Dangling entry: index points at a row that was removed behind
        // the index's back.
        let mut t = table();
        t.upsert(1, row("/a", 5, 2));
        t.rows.remove(&1);
        let err = t.verify_indexes().unwrap_err();
        assert!(err.contains("has no row"), "got: {err}");

        // Stale key: row mutated without re-filing the index entry.
        let mut t = table();
        t.upsert(1, row("/a", 5, 2));
        t.rows.insert(1, row("/renamed", 5, 2));
        let err = t.verify_indexes().unwrap_err();
        assert!(err.contains("extractor says"), "got: {err}");

        // Missing entry: row never indexed.
        let mut t = table();
        t.upsert(1, row("/a", 5, 2));
        t.indexes[0].map.clear();
        let err = t.verify_indexes().unwrap_err();
        assert!(err.contains("entries for"), "got: {err}");
    }

    #[test]
    fn values_order_lexicographically() {
        assert!(Value::U64(1) < Value::U64(2));
        assert!(vec![Value::U64(1), Value::U64(9)] < vec![Value::U64(2), Value::U64(0)]);
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
    }
}
