//! # copra-metadb — an embedded indexed table store (MySQL stand-in)
//!
//! §4.2.5 of the paper: TSM ≤5.5 keeps its object catalog in a proprietary
//! database whose (tape id, sequence id) fields are not indexed and cannot
//! be; LANL therefore *exports the relevant parts of the TSM database into
//! MySQL*, adds indexes, and has PFTool query that replica to sort recalls
//! into tape order and to resolve file → TSM object id for the synchronous
//! deleter (§4.2.6).
//!
//! This crate is that replica: a small embedded store offering typed tables
//! with a primary key and any number of ordered secondary indexes
//! ([`table::Table`]), plus the concrete exported-TSM schema
//! ([`tsm::TsmCatalog`]) the integration uses.

pub mod table;
pub mod tsm;

pub use table::{IndexKey, Table, Value};
pub use tsm::{TsmCatalog, TsmObjectRow};
