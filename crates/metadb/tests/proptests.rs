//! Property tests: secondary indexes always agree with a full scan.

use copra_metadb::{Table, TsmCatalog, TsmObjectRow};
use copra_simtime::SimInstant;
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct Row {
    group: u64,
    name: String,
}

#[derive(Debug, Clone)]
enum Op {
    Upsert(u64, u64, String),
    Remove(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..40, 0u64..5, "[a-c]{1,3}").prop_map(|(k, g, n)| Op::Upsert(k, g, n)),
            (0u64..40).prop_map(Op::Remove),
        ],
        1..80,
    )
}

proptest! {
    /// After any op sequence, `select` by index equals filtering a scan,
    /// and `index_scan` is exactly the sorted multiset of live rows.
    #[test]
    fn index_agrees_with_scan(ops in ops()) {
        let mut table: Table<u64, Row> = Table::new("t");
        table.add_index("by_group", |_, r: &Row| vec![r.group.into()]);
        table.add_index("by_name", |_, r: &Row| vec![r.name.as_str().into()]);
        let mut model: std::collections::BTreeMap<u64, Row> = Default::default();
        for op in ops {
            match op {
                Op::Upsert(k, group, name) => {
                    let row = Row { group, name };
                    table.upsert(k, row.clone());
                    model.insert(k, row);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(table.remove(&k).is_some(), model.remove(&k).is_some());
                }
            }
            prop_assert_eq!(table.len(), model.len());
            // point lookups agree
            for g in 0u64..5 {
                let got = table.select("by_group", &vec![g.into()]);
                let want: Vec<u64> = model
                    .iter()
                    .filter(|(_, r)| r.group == g)
                    .map(|(k, _)| *k)
                    .collect();
                prop_assert_eq!(got, want);
            }
            // full index order agrees
            let got: Vec<(u64, u64)> = table
                .index_scan("by_group")
                .into_iter()
                .map(|(ik, k)| match &ik[0] {
                    copra_metadb::Value::U64(g) => (*g, k),
                    _ => unreachable!(),
                })
                .collect();
            let mut want: Vec<(u64, u64)> =
                model.iter().map(|(k, r)| (r.group, *k)).collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    /// sort_for_recall returns rows sorted by (tape, seq) and exactly the
    /// known subset of the requested ids.
    #[test]
    fn recall_order_is_sorted_and_complete(
        rows in prop::collection::vec((0u64..1000, 0u32..16, 0u32..64), 1..60),
        extra in prop::collection::vec(1000u64..2000, 0..10),
    ) {
        let catalog = TsmCatalog::new();
        let mut known = std::collections::BTreeSet::new();
        for (i, (objid_base, tape, seq)) in rows.iter().enumerate() {
            let objid = objid_base + i as u64 * 1000; // unique
            known.insert(objid);
            catalog.record(TsmObjectRow {
                objid,
                path: format!("/f{objid}"),
                fs_ino: objid + 1,
                tape: *tape,
                seq: *seq,
                len: 1,
                stored_at: SimInstant::EPOCH,
            });
        }
        let mut ask: Vec<u64> = known.iter().cloned().collect();
        ask.extend(extra.iter().cloned().filter(|e| !known.contains(e)));
        let sorted = catalog.sort_for_recall(&ask);
        prop_assert_eq!(sorted.len(), known.len(), "unknown ids must be skipped");
        for w in sorted.windows(2) {
            prop_assert!(
                (w[0].tape, w[0].seq, w[0].objid) <= (w[1].tape, w[1].seq, w[1].objid)
            );
        }
    }
}
