//! Property tests: pool accounting and HSM state machine invariants under
//! arbitrary operation sequences.

use copra_pfs::{Cmp, HsmState, Pfs, PfsBuilder, PoolConfig, Predicate, Rule};
use copra_simtime::{Clock, DataSize};
use copra_vfs::{Content, Ino};
use proptest::prelude::*;
use std::collections::HashMap;

fn archive() -> Pfs {
    PfsBuilder::new("a", Clock::new())
        .pool(PoolConfig::fast_disk("fast", 2, DataSize::tb(1)))
        .pool(PoolConfig::slow_disk("slow", 2, DataSize::tb(1)))
        .placement(vec![
            Rule {
                name: "small".into(),
                action: copra_pfs::Action::Place {
                    pool: "slow".into(),
                },
                predicate: Predicate::SizeBytes(Cmp::Lt, 1000),
            },
            Rule {
                name: "rest".into(),
                action: copra_pfs::Action::Place {
                    pool: "fast".into(),
                },
                predicate: Predicate::True,
            },
        ])
        .build()
}

#[derive(Debug, Clone)]
enum Op {
    Create(u8, u32),
    WriteAt(u8, u32, u32),
    Truncate(u8, u32),
    Unlink(u8),
    Premigrate(u8),
    Punch(u8),
    Restore(u8),
    MovePool(u8),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..12, 0u32..100_000).prop_map(|(f, s)| Op::Create(f, s)),
            (0u8..12, 0u32..50_000, 0u32..50_000).prop_map(|(f, o, l)| Op::WriteAt(f, o, l)),
            (0u8..12, 0u32..120_000).prop_map(|(f, s)| Op::Truncate(f, s)),
            (0u8..12).prop_map(Op::Unlink),
            (0u8..12).prop_map(Op::Premigrate),
            (0u8..12).prop_map(Op::Punch),
            (0u8..12).prop_map(Op::Restore),
            (0u8..12).prop_map(Op::MovePool),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After any sequence of namespace + DMAPI operations:
    /// * per-pool `used` equals the sum of on-disk bytes of its files;
    /// * logical sizes survive punch/restore;
    /// * the HSM state machine only takes legal transitions.
    #[test]
    fn pool_accounting_matches_reality(ops in ops()) {
        let pfs = archive();
        let mut files: HashMap<u8, (Ino, u64 /*logical*/, HsmState)> = HashMap::new();
        let mut next_objid = 1u64;
        for op in ops {
            match op {
                Op::Create(f, size) => {
                    if files.contains_key(&f) {
                        continue;
                    }
                    let ino = pfs
                        .create_file(&format!("/f{f}"), 0, Content::synthetic(f as u64, size as u64))
                        .unwrap();
                    files.insert(f, (ino, size as u64, HsmState::Resident));
                }
                Op::WriteAt(f, off, len) => {
                    if let Some((ino, logical, state)) = files.get_mut(&f) {
                        if *state == HsmState::Migrated {
                            prop_assert!(pfs
                                .write_at(*ino, off as u64, Content::synthetic(9, len as u64))
                                .is_err());
                            continue;
                        }
                        pfs.write_at(*ino, off as u64, Content::synthetic(9, len as u64))
                            .unwrap();
                        *logical = (*logical).max(off as u64 + len as u64);
                        *state = HsmState::Resident; // mutation orphans tape copy
                    }
                }
                Op::Truncate(f, size) => {
                    if let Some((ino, logical, state)) = files.get_mut(&f) {
                        if *state == HsmState::Migrated {
                            prop_assert!(pfs.truncate(*ino, size as u64).is_err());
                            continue;
                        }
                        pfs.truncate(*ino, size as u64).unwrap();
                        *logical = size as u64;
                        *state = HsmState::Resident;
                    }
                }
                Op::Unlink(f) => {
                    if let Some((_, logical, _)) = files.get(&f) {
                        let attr = pfs.unlink(&format!("/f{f}")).unwrap();
                        prop_assert_eq!(attr.size, *logical);
                        files.remove(&f);
                    }
                }
                Op::Premigrate(f) => {
                    if let Some((ino, _, state)) = files.get_mut(&f) {
                        if *state == HsmState::Resident {
                            pfs.mark_premigrated(*ino, next_objid).unwrap();
                            next_objid += 1;
                            *state = HsmState::Premigrated;
                        }
                    }
                }
                Op::Punch(f) => {
                    if let Some((ino, _, state)) = files.get_mut(&f) {
                        let r = pfs.punch_hole(*ino);
                        if *state == HsmState::Premigrated {
                            r.unwrap();
                            *state = HsmState::Migrated;
                        } else {
                            prop_assert!(r.is_err());
                        }
                    }
                }
                Op::Restore(f) => {
                    if let Some((ino, logical, state)) = files.get_mut(&f) {
                        let content = Content::synthetic(1, *logical);
                        let r = pfs.restore_stub(*ino, content);
                        if *state == HsmState::Migrated {
                            r.unwrap();
                            *state = HsmState::Premigrated;
                        } else {
                            prop_assert!(r.is_err());
                        }
                    }
                }
                Op::MovePool(f) => {
                    if let Some((ino, _, _)) = files.get(&f) {
                        let target = if pfs.pool(pfs.pool_of(*ino)).name() == "fast" {
                            "slow"
                        } else {
                            "fast"
                        };
                        pfs.move_to_pool(*ino, target, copra_simtime::SimInstant::EPOCH)
                            .unwrap();
                    }
                }
            }
            // Invariants after every step.
            let mut per_pool: HashMap<String, u64> = HashMap::new();
            for (f, (ino, logical, state)) in &files {
                let attr = pfs.stat(&format!("/f{f}")).unwrap();
                prop_assert_eq!(attr.size, *logical, "logical size of f{}", f);
                prop_assert_eq!(pfs.hsm_state(*ino).unwrap(), *state);
                let on_disk = if *state == HsmState::Migrated { 0 } else { *logical };
                *per_pool
                    .entry(pfs.pool(pfs.pool_of(*ino)).name().to_string())
                    .or_default() += on_disk;
            }
            for pool in pfs.pools() {
                let want = per_pool.get(pool.name()).copied().unwrap_or(0);
                prop_assert_eq!(
                    pool.usage().used.as_bytes(),
                    want,
                    "pool {} accounting",
                    pool.name()
                );
            }
        }
    }
}
