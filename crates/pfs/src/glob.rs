//! Minimal shell-style wildcard matching for policy rules.
//!
//! GPFS policy `LIKE` clauses and fileset patterns reduce to `*` / `?`
//! matching in practice; that's all we implement.

/// Match `name` against `pattern`, where `*` matches any run (including
/// empty) and `?` matches exactly one byte. Matching is over bytes; policy
/// patterns and names are ASCII in this system.
pub fn wildcard_match(pattern: &str, name: &str) -> bool {
    let p = pattern.as_bytes();
    let n = name.as_bytes();
    // Classic two-pointer with backtracking to the last '*'.
    let (mut pi, mut ni) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ni < n.len() {
        if pi < p.len() && (p[pi] == b'?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some((pi, ni));
            pi += 1;
        } else if let Some((spi, sni)) = star {
            pi = spi + 1;
            ni = sni + 1;
            star = Some((spi, sni + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::wildcard_match;

    #[test]
    fn literal_match() {
        assert!(wildcard_match("file.dat", "file.dat"));
        assert!(!wildcard_match("file.dat", "file.dax"));
        assert!(!wildcard_match("file", "file.dat"));
    }

    #[test]
    fn star_matches_runs() {
        assert!(wildcard_match("*.dat", "run-0042.dat"));
        assert!(wildcard_match("ckpt*", "ckpt"));
        assert!(wildcard_match("*", ""));
        assert!(wildcard_match("a*b*c", "aXXbYYc"));
        assert!(!wildcard_match("a*b*c", "aXXbYY"));
    }

    #[test]
    fn question_matches_one() {
        assert!(wildcard_match("f?le", "file"));
        assert!(!wildcard_match("f?le", "fle"));
        assert!(!wildcard_match("?", ""));
    }

    #[test]
    fn backtracking_cases() {
        assert!(wildcard_match("*aab", "aaab"));
        assert!(wildcard_match("a*a*a", "aaaa"));
        assert!(!wildcard_match("a*a*a", "aa"));
        assert!(wildcard_match("**x**", "x"));
    }
}
