//! HSM residency state of a managed file.
//!
//! TSM's space management (HSM for GPFS) distinguishes three states, which
//! the integration relies on throughout (§4.2.2):

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Residency state recorded in the `hsm.state` extended attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HsmState {
    /// Data lives only on file-system disk.
    Resident,
    /// Data is on disk *and* a valid copy exists on tape (migration done,
    /// hole not punched yet).
    Premigrated,
    /// Data lives only on tape; the on-disk inode is a stub.
    Migrated,
}

impl HsmState {
    /// Name of the extended attribute carrying this state.
    pub const XATTR: &'static str = "hsm.state";
    /// Extended attribute carrying the TSM object id for non-resident files.
    pub const XATTR_OBJID: &'static str = "hsm.objid";
    /// Extended attribute carrying the logical size of a punched stub.
    pub const XATTR_STUB_SIZE: &'static str = "hsm.stub.size";

    pub fn as_str(self) -> &'static str {
        match self {
            HsmState::Resident => "resident",
            HsmState::Premigrated => "premigrated",
            HsmState::Migrated => "migrated",
        }
    }

    /// True if a tape copy exists.
    pub fn on_tape(self) -> bool {
        matches!(self, HsmState::Premigrated | HsmState::Migrated)
    }

    /// True if the data can be read straight from disk.
    pub fn on_disk(self) -> bool {
        matches!(self, HsmState::Resident | HsmState::Premigrated)
    }
}

impl fmt::Display for HsmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for HsmState {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "resident" => Ok(HsmState::Resident),
            "premigrated" => Ok(HsmState::Premigrated),
            "migrated" => Ok(HsmState::Migrated),
            other => Err(format!("unknown hsm state: {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for s in [
            HsmState::Resident,
            HsmState::Premigrated,
            HsmState::Migrated,
        ] {
            assert_eq!(s.as_str().parse::<HsmState>().unwrap(), s);
        }
        assert!("bogus".parse::<HsmState>().is_err());
    }

    #[test]
    fn residency_predicates() {
        assert!(HsmState::Resident.on_disk());
        assert!(!HsmState::Resident.on_tape());
        assert!(HsmState::Premigrated.on_disk());
        assert!(HsmState::Premigrated.on_tape());
        assert!(!HsmState::Migrated.on_disk());
        assert!(HsmState::Migrated.on_tape());
    }
}
