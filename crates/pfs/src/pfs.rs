//! The parallel file system proper: a [`copra_vfs::Vfs`] namespace plus
//! storage pools, placement policy, and DMAPI-style managed regions.

use crate::hsmstate::HsmState;
use crate::policy::{FileRecord, PolicyEngine, Rule};
use crate::pool::{PoolConfig, PoolId, StoragePool};
use copra_simtime::{Clock, DataSize, Reservation, SimDuration, SimInstant, Timeline};
use copra_trace::Tracer;
use copra_vfs::{Content, FsError, FsResult, Ino, InodeAttr, StripedU64Map, Vfs, WalkEntry};
use parking_lot::RwLock;
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Result of reading a managed file.
#[derive(Debug, Clone)]
pub enum ReadOutcome {
    /// Data was resident on disk.
    Data(Content),
    /// The file is a punched stub; the caller must drive a recall through
    /// the HSM (this is the DMAPI read event).
    NeedsRecall { ino: Ino, objid: u64 },
}

struct PfsShared {
    vfs: Vfs,
    pools: Vec<StoragePool>,
    pool_by_name: FxHashMap<String, PoolId>,
    placement: PolicyEngine,
    /// Per-file pool residency, lock-striped like the inode table it
    /// shadows: policy scans read it from every scan thread while creates
    /// and tiering moves write disjoint inos.
    file_pools: StripedU64Map<PoolId>,
    default_pool: PoolId,
    /// The metadata service path: file create/stat/unlink transactions
    /// serialize here in simulated time. GPFS's own benchmark claim — one
    /// million inodes scanned in ten minutes (§4.2.1) — corresponds to
    /// roughly 1.7k metadata ops/s, which the default latency reflects.
    meta: Timeline,
    /// Span tracer for scan/policy sub-phases. `Pfs` has no dependency on
    /// the obs registry, so it carries its own handle; disabled until
    /// [`Pfs::arm_tracing`] (read lazily at scan time).
    tracer: RwLock<Tracer>,
}

/// A mounted parallel file system (archive or scratch). Cheap to clone.
#[derive(Clone)]
pub struct Pfs {
    shared: Arc<PfsShared>,
}

/// Builder for [`Pfs`].
pub struct PfsBuilder {
    name: String,
    clock: Clock,
    pools: Vec<PoolConfig>,
    placement: Vec<Rule>,
    meta_latency: SimDuration,
}

impl PfsBuilder {
    pub fn new(name: impl Into<String>, clock: Clock) -> Self {
        PfsBuilder {
            name: name.into(),
            clock,
            pools: Vec::new(),
            placement: Vec::new(),
            meta_latency: SimDuration::from_micros(600),
        }
    }

    /// Per-metadata-transaction latency (create/stat/unlink).
    pub fn meta_latency(mut self, latency: SimDuration) -> Self {
        self.meta_latency = latency;
        self
    }

    /// Add a pool. The first internal pool added becomes the default
    /// placement target.
    pub fn pool(mut self, config: PoolConfig) -> Self {
        self.pools.push(config);
        self
    }

    /// Placement rules (only `Action::Place` rules are consulted).
    pub fn placement(mut self, rules: Vec<Rule>) -> Self {
        self.placement = rules;
        self
    }

    pub fn build(self) -> Pfs {
        assert!(
            self.pools.iter().any(|p| !p.external),
            "a Pfs needs at least one internal pool"
        );
        let pools: Vec<StoragePool> = self
            .pools
            .into_iter()
            .enumerate()
            .map(|(i, cfg)| StoragePool::new(PoolId(i as u32), cfg))
            .collect();
        let pool_by_name = pools
            .iter()
            .map(|p| (p.name().to_string(), p.id()))
            .collect();
        let default_pool = pools
            .iter()
            .find(|p| !p.is_external())
            .expect("checked above")
            .id();
        let meta = Timeline::latency_only(format!("{}-meta", self.name), self.meta_latency);
        Pfs {
            shared: Arc::new(PfsShared {
                vfs: Vfs::new(self.name, self.clock),
                pools,
                pool_by_name,
                placement: PolicyEngine::new(self.placement),
                file_pools: StripedU64Map::new(64),
                default_pool,
                meta,
                tracer: RwLock::new(Tracer::disabled()),
            }),
        }
    }
}

impl Pfs {
    /// A scratch-style file system: one big internal pool, no placement
    /// rules (PanFS stand-in).
    pub fn scratch(name: &str, clock: Clock, devices: usize) -> Pfs {
        PfsBuilder::new(name, clock)
            .pool(PoolConfig::fast_disk(
                "scratch",
                devices,
                DataSize::tb(2000),
            ))
            .build()
    }

    pub fn name(&self) -> &str {
        self.shared.vfs.name()
    }

    pub fn clock(&self) -> &Clock {
        self.shared.vfs.clock()
    }

    /// Install a span tracer; scan and policy runs emit sub-phase spans
    /// through it from then on.
    pub fn arm_tracing(&self, tracer: Tracer) {
        *self.shared.tracer.write() = tracer;
    }

    /// Current tracer handle (disabled unless armed).
    pub fn tracer(&self) -> Tracer {
        self.shared.tracer.read().clone()
    }

    /// Escape hatch to the raw namespace (tests and internal movers).
    pub fn vfs(&self) -> &Vfs {
        &self.shared.vfs
    }

    // ----- pools ----------------------------------------------------------

    pub fn pools(&self) -> &[StoragePool] {
        &self.shared.pools
    }

    pub fn pool(&self, id: PoolId) -> &StoragePool {
        &self.shared.pools[id.0 as usize]
    }

    pub fn pool_by_name(&self, name: &str) -> Option<&StoragePool> {
        self.shared.pool_by_name.get(name).map(|id| self.pool(*id))
    }

    /// Pool a file currently resides in.
    pub fn pool_of(&self, ino: Ino) -> PoolId {
        self.shared
            .file_pools
            .get(ino.0)
            .unwrap_or(self.shared.default_pool)
    }

    /// Move a file's *placement* between internal pools (ILM tiering within
    /// the file system). Charges a read on the old pool and a write on the
    /// new one; returns the write reservation.
    pub fn move_to_pool(&self, ino: Ino, to: &str, ready: SimInstant) -> FsResult<Reservation> {
        let to_id = *self
            .shared
            .pool_by_name
            .get(to)
            .ok_or_else(|| FsError::NotFound(format!("pool {to}")))?;
        if self.pool(to_id).is_external() {
            return Err(FsError::PermissionDenied(
                "use the HSM to migrate to external pools".to_string(),
            ));
        }
        // A punched stub occupies no disk: tiering it moves metadata only.
        let on_disk = if self.hsm_state(ino)? == HsmState::Migrated {
            0
        } else {
            self.shared.vfs.stat_ino(ino)?.size
        };
        let size = DataSize::from_bytes(on_disk);
        let from_id = self.pool_of(ino);
        if from_id == to_id {
            return Ok(Reservation {
                start: ready,
                end: ready,
            });
        }
        let r_read = self.pool(from_id).charge_io(ready, size);
        let r_write = self.pool(to_id).charge_io(r_read.end, size);
        self.pool(from_id).account_remove(size);
        self.pool(to_id).account_add(size);
        self.shared.file_pools.insert(ino.0, to_id);
        Ok(r_write)
    }

    /// Charge one metadata transaction (create / stat / unlink) on this
    /// file system's metadata service.
    pub fn charge_meta(&self, ready: SimInstant) -> Reservation {
        self.shared.meta.transfer(ready, DataSize::ZERO)
    }

    /// Charge a data read of `bytes` for `ino` against its pool's devices.
    pub fn charge_read(&self, ino: Ino, ready: SimInstant, bytes: DataSize) -> Reservation {
        self.pool(self.pool_of(ino)).charge_io(ready, bytes)
    }

    /// Charge a data write of `bytes` for `ino` against its pool's devices.
    pub fn charge_write(&self, ino: Ino, ready: SimInstant, bytes: DataSize) -> Reservation {
        self.pool(self.pool_of(ino)).charge_io(ready, bytes)
    }

    // ----- namespace ops (delegation + pool/HSM bookkeeping) --------------

    pub fn mkdir_p(&self, path: &str) -> FsResult<Ino> {
        self.shared.vfs.mkdir_p(path)
    }

    pub fn exists(&self, path: &str) -> bool {
        self.shared.vfs.exists(path)
    }

    pub fn resolve(&self, path: &str) -> FsResult<Ino> {
        self.shared.vfs.resolve(path)
    }

    pub fn path_of(&self, ino: Ino) -> FsResult<String> {
        self.shared.vfs.path_of(ino)
    }

    pub fn readdir(&self, path: &str) -> FsResult<Vec<copra_vfs::DirEntry>> {
        self.shared.vfs.readdir(path)
    }

    pub fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        self.shared.vfs.rename(from, to)
    }

    pub fn rmdir(&self, path: &str) -> FsResult<()> {
        self.shared.vfs.rmdir(path)
    }

    pub fn get_xattr(&self, ino: Ino, key: &str) -> FsResult<Option<String>> {
        self.shared.vfs.get_xattr(ino, key)
    }

    pub fn set_xattr(&self, ino: Ino, key: &str, value: &str) -> FsResult<()> {
        self.shared.vfs.set_xattr(ino, key, value)
    }

    pub fn utimes(&self, ino: Ino, mtime: SimInstant, atime: SimInstant) -> FsResult<()> {
        self.shared.vfs.utimes(ino, mtime, atime)
    }

    /// Create a file, applying placement policy to choose its pool.
    pub fn create_file(&self, path: &str, uid: u32, content: Content) -> FsResult<Ino> {
        let size = content.len();
        self.create_file_with_hint(path, uid, content, size)
    }

    /// Create a file whose placement is decided by `size_hint` rather than
    /// the initial content length. PFTool pre-creates destination files
    /// empty (workers then fill chunks in parallel); the hint keeps the
    /// placement rules seeing the eventual size.
    pub fn create_file_with_hint(
        &self,
        path: &str,
        uid: u32,
        content: Content,
        size_hint: u64,
    ) -> FsResult<Ino> {
        let actual = content.len();
        let ino = self.shared.vfs.create(path, uid, content)?;
        let now = self.clock().now();
        let rec = FileRecord {
            path: path.to_string(),
            ino,
            size: size_hint,
            uid,
            mtime: now,
            atime: now,
            pool: String::new(),
            hsm: HsmState::Resident,
        };
        let pool_id = self
            .shared
            .placement
            .place(&rec, now)
            .and_then(|name| self.shared.pool_by_name.get(name).copied())
            .unwrap_or(self.shared.default_pool);
        self.pool(pool_id).account_add(DataSize::from_bytes(actual));
        self.shared.file_pools.insert(ino.0, pool_id);
        Ok(ino)
    }

    /// HSM residency state of a file (Resident if unannotated).
    pub fn hsm_state(&self, ino: Ino) -> FsResult<HsmState> {
        Ok(self
            .shared
            .vfs
            .get_xattr(ino, HsmState::XATTR)?
            .and_then(|s| s.parse().ok())
            .unwrap_or(HsmState::Resident))
    }

    /// TSM object id recorded on the file, if any.
    pub fn hsm_objid(&self, ino: Ino) -> FsResult<Option<u64>> {
        Ok(self
            .shared
            .vfs
            .get_xattr(ino, HsmState::XATTR_OBJID)?
            .and_then(|s| s.parse().ok()))
    }

    /// Logical size: the pre-punch size for stubs, the on-disk size
    /// otherwise.
    pub fn logical_size(&self, ino: Ino) -> FsResult<u64> {
        let attr = self.shared.vfs.stat_ino(ino)?;
        Ok(Self::overlay_size(&attr))
    }

    fn overlay_size(attr: &InodeAttr) -> u64 {
        attr.xattr(HsmState::XATTR_STUB_SIZE)
            .and_then(|s| s.parse().ok())
            .unwrap_or(attr.size)
    }

    /// `stat` with the stub-size overlay applied.
    pub fn stat(&self, path: &str) -> FsResult<InodeAttr> {
        let mut attr = self.shared.vfs.stat(path)?;
        attr.size = Self::overlay_size(&attr);
        Ok(attr)
    }

    pub fn stat_ino(&self, ino: Ino) -> FsResult<InodeAttr> {
        let mut attr = self.shared.vfs.stat_ino(ino)?;
        attr.size = Self::overlay_size(&attr);
        Ok(attr)
    }

    /// Recursive walk with stub-size overlay.
    pub fn walk(&self, path: &str) -> FsResult<Vec<WalkEntry>> {
        let mut entries = self.shared.vfs.walk(path)?;
        for e in &mut entries {
            e.attr.size = Self::overlay_size(&e.attr);
        }
        Ok(entries)
    }

    /// Read file data, honouring managed regions: a migrated stub yields
    /// [`ReadOutcome::NeedsRecall`] (the DMAPI read event) instead of data.
    pub fn read(&self, ino: Ino, offset: u64, len: u64) -> FsResult<ReadOutcome> {
        match self.hsm_state(ino)? {
            HsmState::Migrated => {
                let objid = self.hsm_objid(ino)?.ok_or_else(|| {
                    FsError::PermissionDenied(format!("stub {ino} has no hsm.objid"))
                })?;
                Ok(ReadOutcome::NeedsRecall { ino, objid })
            }
            _ => Ok(ReadOutcome::Data(self.shared.vfs.read(ino, offset, len)?)),
        }
    }

    /// Read a whole resident file; error if it needs recall.
    pub fn read_resident(&self, path: &str) -> FsResult<Content> {
        let ino = self.resolve(path)?;
        let size = self.stat_ino(ino)?.size;
        match self.read(ino, 0, size)? {
            ReadOutcome::Data(c) => Ok(c),
            ReadOutcome::NeedsRecall { .. } => Err(FsError::PermissionDenied(format!(
                "{path} is migrated to tape; recall required"
            ))),
        }
    }

    /// Overwrite part of a file. Mutating a premigrated/migrated file makes
    /// the tape copy stale: the file returns to `Resident` and the old
    /// object id is parked in `hsm.orphan.objid` — exactly the §6.3
    /// situation the synchronous deleter cannot see and reconciliation (or
    /// the FUSE truncate interceptor) must clean up.
    pub fn write_at(&self, ino: Ino, offset: u64, patch: Content) -> FsResult<()> {
        self.orphan_tape_copy_on_mutation(ino)?;
        let old = self.shared.vfs.stat_ino(ino)?.size;
        self.shared.vfs.write_at(ino, offset, patch)?;
        let new = self.shared.vfs.stat_ino(ino)?.size;
        self.pool(self.pool_of(ino))
            .account_resize(DataSize::from_bytes(old), DataSize::from_bytes(new));
        Ok(())
    }

    /// Truncate; same staleness handling as [`Pfs::write_at`].
    pub fn truncate(&self, ino: Ino, new_len: u64) -> FsResult<()> {
        self.orphan_tape_copy_on_mutation(ino)?;
        let old = self.shared.vfs.stat_ino(ino)?.size;
        self.shared.vfs.truncate(ino, new_len)?;
        self.pool(self.pool_of(ino))
            .account_resize(DataSize::from_bytes(old), DataSize::from_bytes(new_len));
        Ok(())
    }

    fn orphan_tape_copy_on_mutation(&self, ino: Ino) -> FsResult<()> {
        let state = self.hsm_state(ino)?;
        if state == HsmState::Migrated {
            return Err(FsError::PermissionDenied(format!(
                "{ino} is a migrated stub; recall before writing"
            )));
        }
        if state == HsmState::Premigrated {
            if let Some(objid) = self.hsm_objid(ino)? {
                self.shared
                    .vfs
                    .set_xattr(ino, "hsm.orphan.objid", &objid.to_string())?;
            }
            self.shared.vfs.remove_xattr(ino, HsmState::XATTR_OBJID)?;
            self.shared
                .vfs
                .set_xattr(ino, HsmState::XATTR, HsmState::Resident.as_str())?;
        }
        Ok(())
    }

    /// Unlink, returning the final attributes (pool accounting updated).
    pub fn unlink(&self, path: &str) -> FsResult<InodeAttr> {
        let ino = self.resolve(path)?;
        let pool = self.pool_of(ino);
        let mut attr = self.shared.vfs.unlink(path)?;
        attr.size = Self::overlay_size(&attr);
        // A punched stub occupies ~0 disk; account what was on disk.
        let on_disk = if attr.xattr(HsmState::XATTR_STUB_SIZE).is_some() {
            0
        } else {
            attr.size
        };
        self.pool(pool)
            .account_remove(DataSize::from_bytes(on_disk));
        self.shared.file_pools.remove(ino.0);
        Ok(attr)
    }

    // ----- DMAPI surface used by the HSM ----------------------------------

    /// Record that a valid tape copy exists (state → Premigrated).
    pub fn mark_premigrated(&self, ino: Ino, objid: u64) -> FsResult<()> {
        self.shared
            .vfs
            .set_xattr(ino, HsmState::XATTR_OBJID, &objid.to_string())?;
        self.shared
            .vfs
            .set_xattr(ino, HsmState::XATTR, HsmState::Premigrated.as_str())
    }

    /// Punch the managed region: drop on-disk data for a premigrated file,
    /// leaving a stub that still `stat`s at its logical size.
    pub fn punch_hole(&self, ino: Ino) -> FsResult<()> {
        let state = self.hsm_state(ino)?;
        if state != HsmState::Premigrated {
            return Err(FsError::PermissionDenied(format!(
                "punch_hole on {ino} in state {state} (need premigrated)"
            )));
        }
        let size = self.shared.vfs.stat_ino(ino)?.size;
        self.shared
            .vfs
            .set_xattr(ino, HsmState::XATTR_STUB_SIZE, &size.to_string())?;
        self.shared.vfs.set_content(ino, Content::empty())?;
        self.shared
            .vfs
            .set_xattr(ino, HsmState::XATTR, HsmState::Migrated.as_str())?;
        self.pool(self.pool_of(ino))
            .account_resize(DataSize::from_bytes(size), DataSize::ZERO);
        Ok(())
    }

    /// Refill a stub with data recalled from tape (state → Premigrated:
    /// disk and tape copies both valid).
    pub fn restore_stub(&self, ino: Ino, content: Content) -> FsResult<()> {
        let state = self.hsm_state(ino)?;
        if state != HsmState::Migrated {
            return Err(FsError::PermissionDenied(format!(
                "restore_stub on {ino} in state {state} (need migrated)"
            )));
        }
        let logical: u64 = self
            .shared
            .vfs
            .get_xattr(ino, HsmState::XATTR_STUB_SIZE)?
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        if content.len() != logical {
            return Err(FsError::InvalidRange {
                len: logical,
                offset: 0,
                requested: content.len(),
            });
        }
        let size = content.len();
        self.shared.vfs.set_content(ino, content)?;
        self.shared
            .vfs
            .remove_xattr(ino, HsmState::XATTR_STUB_SIZE)?;
        self.shared
            .vfs
            .set_xattr(ino, HsmState::XATTR, HsmState::Premigrated.as_str())?;
        self.pool(self.pool_of(ino))
            .account_resize(DataSize::ZERO, DataSize::from_bytes(size));
        Ok(())
    }

    /// Sever the tape association: drop objid/stub xattrs and return the
    /// file to Resident. Scrub uses this to repair a premigrated stub
    /// whose tape object vanished in a crash — the disk copy is intact,
    /// so the file is simply no longer archived. Refuses migrated stubs
    /// (their disk copy is gone; dropping the objid would lose data).
    pub fn mark_resident(&self, ino: Ino) -> FsResult<()> {
        let state = self.hsm_state(ino)?;
        if state == HsmState::Migrated {
            return Err(FsError::PermissionDenied(format!(
                "mark_resident on {ino} in state {state}: stub has no disk copy"
            )));
        }
        self.shared.vfs.remove_xattr(ino, HsmState::XATTR_OBJID)?;
        self.shared
            .vfs
            .remove_xattr(ino, HsmState::XATTR_STUB_SIZE)?;
        self.shared
            .vfs
            .set_xattr(ino, HsmState::XATTR, HsmState::Resident.as_str())
    }

    // ----- policy scan -----------------------------------------------------

    /// Default scan parallelism: one thread per available core.
    fn scan_threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Policy-visible record for one regular file, built straight from a
    /// scan-time attr snapshot (stub-size overlay and HSM state come from
    /// the xattrs already in hand — no second stat, no extra locks).
    fn record_from(&self, path: &str, attr: &InodeAttr) -> FileRecord {
        let hsm = attr
            .xattr(HsmState::XATTR)
            .and_then(|s| s.parse().ok())
            .unwrap_or(HsmState::Resident);
        FileRecord {
            path: path.to_string(),
            ino: attr.ino,
            size: Self::overlay_size(attr),
            uid: attr.uid,
            mtime: attr.mtime,
            atime: attr.atime,
            pool: self.pool(self.pool_of(attr.ino)).name().to_string(),
            hsm,
        }
    }

    /// Snapshot of every regular file as policy-visible records, sorted by
    /// path. Runs the sharded parallel scan at the default thread count.
    pub fn scan_records(&self) -> Vec<FileRecord> {
        self.scan_records_with(Self::scan_threads())
    }

    /// [`Pfs::scan_records`] at an explicit thread count. The result is
    /// identical at any `threads` value: shards are scanned independently
    /// and the merged records are sorted by path.
    pub fn scan_records_with(&self, threads: usize) -> Vec<FileRecord> {
        let tracer = self.tracer();
        let now = self.clock().now();
        let root = tracer.root("pfs.scan_records", threads as u64, now);
        let record = |path: &str, attr: &InodeAttr| {
            if attr.is_file() {
                Some(self.record_from(path, attr))
            } else {
                None
            }
        };
        let mut recs = match &root {
            // Armed: the per-shard observer turns each shard's measured
            // phases into closed spans (sim-zero-length — the sim clock is
            // frozen during real scans — wall intervals carry the data).
            Some(g) => self.shared.vfs.par_scan_observed(threads, record, |st| {
                record_shard_spans(&tracer, g.ctx(), "scan.shard", now, &st);
            }),
            None => self.shared.vfs.par_scan(threads, record),
        };
        let sort_start = tracer.wall_now_ns();
        recs.sort_by(|a, b| a.path.cmp(&b.path));
        if let Some(g) = root {
            tracer.record_closed(Some(g.ctx()), "scan.sort_merge", 0, now, now, sort_start);
            g.finish(now);
        }
        recs
    }

    /// Run a policy over the current namespace.
    pub fn run_policy(&self, engine: &PolicyEngine) -> crate::policy::ScanReport {
        self.run_policy_with(engine, Self::scan_threads())
    }

    /// [`Pfs::run_policy`] at an explicit thread count. Rule evaluation is
    /// fused into the sharded namespace scan: each scan thread classifies
    /// files as it walks its shards and keeps only the matches, so no
    /// global lock is held and no intermediate vector of all records is
    /// ever built. [`PolicyEngine::assemble`] sorts the survivors, making
    /// the report deterministic at every thread count.
    pub fn run_policy_with(
        &self,
        engine: &PolicyEngine,
        threads: usize,
    ) -> crate::policy::ScanReport {
        let now = self.clock().now();
        let tracer = self.tracer();
        let root = tracer.root("pfs.run_policy", threads as u64, now);
        let t0 = std::time::Instant::now();
        let scanned = AtomicUsize::new(0);
        let classify = |path: &str, attr: &InodeAttr| {
            if !attr.is_file() {
                return None;
            }
            scanned.fetch_add(1, Ordering::Relaxed);
            let rec = self.record_from(path, attr);
            engine.classify(&rec, now).map(|idx| (idx, rec))
        };
        let tagged = match &root {
            Some(g) => self.shared.vfs.par_scan_observed(threads, classify, |st| {
                record_shard_spans(&tracer, g.ctx(), "policy.shard", now, &st);
            }),
            None => self.shared.vfs.par_scan(threads, classify),
        };
        let assemble_start = tracer.wall_now_ns();
        let report = engine.assemble(
            tagged,
            scanned.load(Ordering::Relaxed),
            t0.elapsed().as_secs_f64(),
        );
        if let Some(g) = root {
            tracer.record_closed(
                Some(g.ctx()),
                "policy.assemble",
                0,
                now,
                now,
                assemble_start,
            );
            g.finish(now);
        }
        report
    }
}

/// Turn one shard's measured scan phases into closed spans: a `<name>`
/// span per shard with `.snapshot` (under-lock copy-out) and `.walk`
/// (path materialization + record build) children. Called 64 times per
/// scan — the only wall-clock reads on the scan path, which is how armed
/// tracing stays under its 5% overhead budget.
fn record_shard_spans(
    tracer: &Tracer,
    parent: copra_trace::SpanContext,
    name: &'static str,
    now: SimInstant,
    st: &copra_vfs::ShardScanStats,
) {
    let end = tracer.wall_now_ns().unwrap_or(0);
    let walk_start = end.saturating_sub(st.walk_ns);
    let start = walk_start.saturating_sub(st.snapshot_ns);
    let key = st.shard as u64;
    let shard = tracer.record_span(Some(parent), name, key, now, now, start, end);
    match name {
        "scan.shard" => {
            tracer.record_span(
                shard,
                "scan.shard.snapshot",
                key,
                now,
                now,
                start,
                walk_start,
            );
            tracer.record_span(shard, "scan.shard.walk", key, now, now, walk_start, end);
        }
        _ => {
            tracer.record_span(
                shard,
                "policy.shard.snapshot",
                key,
                now,
                now,
                start,
                walk_start,
            );
            tracer.record_span(shard, "policy.shard.walk", key, now, now, walk_start, end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Action, Cmp, Predicate};
    use copra_simtime::Bandwidth;
    use copra_simtime::SimDuration;

    fn archive_fs() -> Pfs {
        PfsBuilder::new("archive", Clock::new())
            .pool(PoolConfig::fast_disk("fast", 4, DataSize::tb(100)))
            .pool(PoolConfig::slow_disk("slow", 2, DataSize::tb(100)))
            .pool(PoolConfig::external("tape"))
            .placement(vec![
                Rule {
                    name: "small-to-slow".to_string(),
                    action: Action::Place {
                        pool: "slow".to_string(),
                    },
                    predicate: Predicate::SizeBytes(Cmp::Lt, 1 << 20),
                },
                Rule {
                    name: "default-fast".to_string(),
                    action: Action::Place {
                        pool: "fast".to_string(),
                    },
                    predicate: Predicate::True,
                },
            ])
            .build()
    }

    #[test]
    fn placement_routes_by_size() {
        let pfs = archive_fs();
        pfs.mkdir_p("/d").unwrap();
        let small = pfs
            .create_file("/d/small", 0, Content::synthetic(1, 1000))
            .unwrap();
        let big = pfs
            .create_file("/d/big", 0, Content::synthetic(2, 10 << 20))
            .unwrap();
        assert_eq!(pfs.pool(pfs.pool_of(small)).name(), "slow");
        assert_eq!(pfs.pool(pfs.pool_of(big)).name(), "fast");
        assert_eq!(pfs.pool_by_name("slow").unwrap().usage().files, 1);
        assert_eq!(
            pfs.pool_by_name("fast").unwrap().usage().used,
            DataSize::from_bytes(10 << 20)
        );
    }

    #[test]
    fn hsm_lifecycle_resident_premigrated_migrated_recall() {
        let pfs = archive_fs();
        pfs.mkdir_p("/d").unwrap();
        let content = Content::synthetic(9, 5 << 20);
        let ino = pfs.create_file("/d/f", 0, content.clone()).unwrap();
        assert_eq!(pfs.hsm_state(ino).unwrap(), HsmState::Resident);

        pfs.mark_premigrated(ino, 777).unwrap();
        assert_eq!(pfs.hsm_state(ino).unwrap(), HsmState::Premigrated);
        assert_eq!(pfs.hsm_objid(ino).unwrap(), Some(777));
        // data still readable
        assert!(matches!(
            pfs.read(ino, 0, 10).unwrap(),
            ReadOutcome::Data(_)
        ));

        pfs.punch_hole(ino).unwrap();
        assert_eq!(pfs.hsm_state(ino).unwrap(), HsmState::Migrated);
        // stat still shows logical size
        assert_eq!(pfs.stat("/d/f").unwrap().size, 5 << 20);
        // reads raise the DMAPI event
        match pfs.read(ino, 0, 10).unwrap() {
            ReadOutcome::NeedsRecall { objid, .. } => assert_eq!(objid, 777),
            other => panic!("expected NeedsRecall, got {other:?}"),
        }
        // disk usage dropped to zero for this file
        assert_eq!(
            pfs.pool_by_name("fast").unwrap().usage().used,
            DataSize::ZERO
        );

        pfs.restore_stub(ino, content.clone()).unwrap();
        assert_eq!(pfs.hsm_state(ino).unwrap(), HsmState::Premigrated);
        match pfs.read(ino, 0, content.len()).unwrap() {
            ReadOutcome::Data(c) => assert!(c.eq_content(&content)),
            other => panic!("expected data, got {other:?}"),
        }
    }

    #[test]
    fn punch_hole_requires_premigrated() {
        let pfs = archive_fs();
        let ino = pfs
            .create_file("/f", 0, Content::synthetic(1, 100))
            .unwrap();
        assert!(pfs.punch_hole(ino).is_err());
    }

    #[test]
    fn restore_rejects_wrong_length() {
        let pfs = archive_fs();
        let ino = pfs
            .create_file("/f", 0, Content::synthetic(1, 100))
            .unwrap();
        pfs.mark_premigrated(ino, 1).unwrap();
        pfs.punch_hole(ino).unwrap();
        assert!(matches!(
            pfs.restore_stub(ino, Content::synthetic(1, 99)),
            Err(FsError::InvalidRange { .. })
        ));
    }

    #[test]
    fn overwrite_of_premigrated_orphans_tape_copy() {
        let pfs = archive_fs();
        let ino = pfs
            .create_file("/f", 0, Content::synthetic(1, 2 << 20))
            .unwrap();
        pfs.mark_premigrated(ino, 55).unwrap();
        pfs.write_at(ino, 0, Content::literal(&b"new"[..])).unwrap();
        assert_eq!(pfs.hsm_state(ino).unwrap(), HsmState::Resident);
        assert_eq!(pfs.hsm_objid(ino).unwrap(), None);
        assert_eq!(
            pfs.get_xattr(ino, "hsm.orphan.objid").unwrap().as_deref(),
            Some("55")
        );
    }

    #[test]
    fn writes_to_migrated_stub_are_rejected() {
        let pfs = archive_fs();
        let ino = pfs
            .create_file("/f", 0, Content::synthetic(1, 100))
            .unwrap();
        pfs.mark_premigrated(ino, 1).unwrap();
        pfs.punch_hole(ino).unwrap();
        assert!(pfs.write_at(ino, 0, Content::literal(&b"x"[..])).is_err());
        assert!(pfs.truncate(ino, 0).is_err());
    }

    #[test]
    fn unlink_of_stub_accounts_zero_disk() {
        let pfs = archive_fs();
        let ino = pfs
            .create_file("/f", 0, Content::synthetic(1, 3 << 20))
            .unwrap();
        pfs.mark_premigrated(ino, 1).unwrap();
        pfs.punch_hole(ino).unwrap();
        let before = pfs.pool_by_name("fast").unwrap().usage().used;
        let attr = pfs.unlink("/f").unwrap();
        assert_eq!(attr.size, 3 << 20); // logical size survives in the attr
        assert_eq!(pfs.pool_by_name("fast").unwrap().usage().used, before);
    }

    #[test]
    fn move_between_internal_pools() {
        let pfs = archive_fs();
        let ino = pfs
            .create_file("/f", 0, Content::synthetic(1, 10 << 20))
            .unwrap();
        assert_eq!(pfs.pool(pfs.pool_of(ino)).name(), "fast");
        let r = pfs.move_to_pool(ino, "slow", SimInstant::EPOCH).unwrap();
        assert!(r.end > SimInstant::EPOCH);
        assert_eq!(pfs.pool(pfs.pool_of(ino)).name(), "slow");
        assert!(pfs.move_to_pool(ino, "tape", SimInstant::EPOCH).is_err());
        // idempotent same-pool move is free
        let r2 = pfs
            .move_to_pool(ino, "slow", SimInstant::from_secs(5))
            .unwrap();
        assert_eq!(r2.start, r2.end);
    }

    #[test]
    fn scan_records_reflect_state() {
        let clock = Clock::new();
        let pfs = PfsBuilder::new("a", clock.clone())
            .pool(PoolConfig::fast_disk("fast", 1, DataSize::tb(1)))
            .build();
        pfs.mkdir_p("/proj").unwrap();
        let ino = pfs
            .create_file("/proj/x.dat", 42, Content::synthetic(1, 1000))
            .unwrap();
        pfs.mark_premigrated(ino, 3).unwrap();
        let recs = pfs.scan_records();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.path, "/proj/x.dat");
        assert_eq!(r.uid, 42);
        assert_eq!(r.size, 1000);
        assert_eq!(r.pool, "fast");
        assert_eq!(r.hsm, HsmState::Premigrated);
    }

    #[test]
    fn policy_scan_over_pfs() {
        let clock = Clock::new();
        let pfs = PfsBuilder::new("a", clock.clone())
            .pool(PoolConfig::fast_disk("fast", 1, DataSize::tb(1)))
            .build();
        pfs.mkdir_p("/d").unwrap();
        for i in 0..10 {
            pfs.create_file(&format!("/d/f{i}"), 0, Content::synthetic(i, 100 + i))
                .unwrap();
        }
        clock.advance_to(SimInstant::from_secs(3600));
        let engine = PolicyEngine::new(vec![Rule::list(
            "aged",
            "candidates",
            Predicate::MtimeAge(Cmp::Ge, SimDuration::from_secs(60)),
        )]);
        let report = pfs.run_policy(&engine);
        assert_eq!(report.scanned, 10);
        assert_eq!(report.lists["candidates"].len(), 10);
    }

    #[test]
    fn streaming_scan_is_thread_count_invariant() {
        let clock = Clock::new();
        let pfs = PfsBuilder::new("a", clock.clone())
            .pool(PoolConfig::fast_disk("fast", 1, DataSize::tb(1)))
            .pool(PoolConfig::slow_disk("slow", 1, DataSize::tb(1)))
            .build();
        for d in 0..8 {
            pfs.mkdir_p(&format!("/d{d}")).unwrap();
            for i in 0..25 {
                let ino = pfs
                    .create_file(
                        &format!("/d{d}/f{i:02}"),
                        i,
                        Content::synthetic(u64::from(d * 100 + i), 64 + u64::from(i)),
                    )
                    .unwrap();
                if i % 5 == 0 {
                    pfs.move_to_pool(ino, "slow", SimInstant::EPOCH).unwrap();
                }
                if i % 7 == 0 {
                    pfs.mark_premigrated(ino, u64::from(d * 100 + i)).unwrap();
                    pfs.punch_hole(ino).unwrap();
                }
            }
        }
        clock.advance_to(SimInstant::from_secs(3600));
        let engine = PolicyEngine::new(vec![
            Rule::exclude("skip-slow", Predicate::InPool("slow".to_string())),
            Rule::list(
                "stubs",
                "stubs",
                Predicate::Hsm(crate::hsmstate::HsmState::Migrated),
            ),
            Rule::migrate("rest", "tape", Predicate::True),
        ]);
        let baseline = pfs.run_policy_with(&engine, 1);
        assert_eq!(baseline.scanned, 200);
        let base_recs = pfs.scan_records_with(1);
        assert_eq!(base_recs.len(), 200);
        for threads in [2, 4, 8] {
            let report = pfs.run_policy_with(&engine, threads);
            assert_eq!(report.scanned, baseline.scanned);
            assert_eq!(report.lists, baseline.lists);
            assert_eq!(report.migrations, baseline.migrations);
            assert_eq!(pfs.scan_records_with(threads), base_recs);
        }
        // Sorted output, and the stub-size overlay survived the fused scan.
        assert!(base_recs.windows(2).all(|w| w[0].path < w[1].path));
        assert!(baseline.lists["stubs"].iter().all(|r| r.size >= 64));
    }

    #[test]
    fn read_charges_pool_devices() {
        let pfs = PfsBuilder::new("a", Clock::new())
            .pool(PoolConfig {
                name: "fast".to_string(),
                devices: 1,
                device_bandwidth: Bandwidth::mb_per_sec(100),
                device_latency: SimDuration::ZERO,
                capacity: DataSize::tb(1),
                external: false,
            })
            .build();
        let ino = pfs
            .create_file("/f", 0, Content::synthetic(1, 100 << 20))
            .unwrap();
        let r = pfs.charge_read(ino, SimInstant::EPOCH, DataSize::from_bytes(100 << 20));
        assert!((r.duration().as_secs_f64() - (100 << 20) as f64 / 100e6).abs() < 1e-6);
    }
}
