//! Storage pools — GPFS classes of service.
//!
//! The paper's archive GPFS has a fast FC4 pool (100 TB) where all files
//! land, a slow disk pool for small files, and GPFS 3.2's *external* pools
//! extending the pool metaphor to tape (§4.2.1). Internal pools carry a
//! device bank ([`copra_simtime::TimelinePool`]) that data movement charges
//! simulated time against; external pools have no devices — data "in" them
//! lives in the tape backend.

use copra_simtime::{Bandwidth, DataSize, SimDuration, SimInstant, TimelinePool};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a pool within one `Pfs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PoolId(pub u32);

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool:{}", self.0)
    }
}

/// Static description of a pool, used by [`crate::PfsBuilder`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    pub name: String,
    /// Number of device timelines (disk arrays / LUN groups).
    pub devices: usize,
    /// Per-device streaming bandwidth.
    pub device_bandwidth: Bandwidth,
    /// Per-I/O latency on each device.
    pub device_latency: SimDuration,
    /// Nominal capacity (accounting only; writes past capacity are allowed
    /// but flagged in `usage()` so ILM tests can observe pressure).
    pub capacity: DataSize,
    /// External pools have no local devices; their data lives in the tape
    /// backend.
    pub external: bool,
}

impl PoolConfig {
    /// The paper's fast FC4 disk pool: parallel arrays on the SAN.
    pub fn fast_disk(name: &str, devices: usize, capacity: DataSize) -> Self {
        PoolConfig {
            name: name.to_string(),
            devices,
            device_bandwidth: Bandwidth::mb_per_sec(400),
            device_latency: SimDuration::from_millis(5),
            capacity,
            external: false,
        }
    }

    /// The paper's "slow" pool used to park small files.
    pub fn slow_disk(name: &str, devices: usize, capacity: DataSize) -> Self {
        PoolConfig {
            name: name.to_string(),
            devices,
            device_bandwidth: Bandwidth::mb_per_sec(80),
            device_latency: SimDuration::from_millis(10),
            capacity,
            external: false,
        }
    }

    /// A GPFS 3.2 external pool (tape-backed; no local devices).
    pub fn external(name: &str) -> Self {
        PoolConfig {
            name: name.to_string(),
            devices: 0,
            device_bandwidth: Bandwidth::ZERO,
            device_latency: SimDuration::ZERO,
            capacity: DataSize::ZERO,
            external: true,
        }
    }
}

/// Usage accounting snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolUsage {
    pub used: DataSize,
    pub capacity: DataSize,
    pub files: u64,
}

impl PoolUsage {
    pub fn over_capacity(&self) -> bool {
        !self.capacity.is_zero() && self.used > self.capacity
    }

    /// Occupancy in [0, ∞); >1 means over nominal capacity.
    pub fn occupancy(&self) -> f64 {
        if self.capacity.is_zero() {
            0.0
        } else {
            self.used.as_bytes() as f64 / self.capacity.as_bytes() as f64
        }
    }
}

/// A live pool: configuration + device bank + usage accounting.
pub struct StoragePool {
    id: PoolId,
    config: PoolConfig,
    devices: Option<TimelinePool>,
    usage: Mutex<PoolUsage>,
}

impl StoragePool {
    pub(crate) fn new(id: PoolId, config: PoolConfig) -> Self {
        let devices = if config.external {
            None
        } else {
            assert!(
                config.devices > 0,
                "internal pool {:?} needs at least one device",
                config.name
            );
            Some(TimelinePool::new(
                &format!("pool-{}", config.name),
                config.devices,
                config.device_bandwidth,
                config.device_latency,
            ))
        };
        let capacity = config.capacity;
        StoragePool {
            id,
            config,
            devices,
            usage: Mutex::new(PoolUsage {
                used: DataSize::ZERO,
                capacity,
                files: 0,
            }),
        }
    }

    pub fn id(&self) -> PoolId {
        self.id
    }

    pub fn name(&self) -> &str {
        &self.config.name
    }

    pub fn is_external(&self) -> bool {
        self.config.external
    }

    /// Device bank for charging simulated I/O time (internal pools only).
    pub fn devices(&self) -> Option<&TimelinePool> {
        self.devices.as_ref()
    }

    /// Charge a read/write of `bytes` against the earliest-available device.
    /// External pools charge nothing here (their cost lives on tape).
    pub fn charge_io(&self, ready: SimInstant, bytes: DataSize) -> copra_simtime::Reservation {
        match &self.devices {
            Some(bank) => bank.transfer_earliest(ready, bytes).1,
            None => copra_simtime::Reservation {
                start: ready,
                end: ready,
            },
        }
    }

    pub fn usage(&self) -> PoolUsage {
        *self.usage.lock()
    }

    pub(crate) fn account_add(&self, bytes: DataSize) {
        let mut u = self.usage.lock();
        u.used += bytes;
        u.files += 1;
    }

    pub(crate) fn account_remove(&self, bytes: DataSize) {
        let mut u = self.usage.lock();
        u.used = u.used.saturating_sub(bytes);
        u.files = u.files.saturating_sub(1);
    }

    pub(crate) fn account_resize(&self, old: DataSize, new: DataSize) {
        let mut u = self.usage.lock();
        u.used = u.used.saturating_sub(old) + new;
    }
}

impl fmt::Debug for StoragePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoragePool")
            .field("id", &self.id)
            .field("name", &self.config.name)
            .field("external", &self.config.external)
            .field("usage", &self.usage())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_pool_charges_devices() {
        let p = StoragePool::new(
            PoolId(0),
            PoolConfig {
                name: "fast".to_string(),
                devices: 2,
                device_bandwidth: Bandwidth::mb_per_sec(100),
                device_latency: SimDuration::ZERO,
                capacity: DataSize::gb(1),
                external: false,
            },
        );
        let a = p.charge_io(SimInstant::EPOCH, DataSize::mb(100));
        let b = p.charge_io(SimInstant::EPOCH, DataSize::mb(100));
        // two devices: both finish at 1 s
        assert_eq!(a.end, SimInstant::from_secs(1));
        assert_eq!(b.end, SimInstant::from_secs(1));
        let c = p.charge_io(SimInstant::EPOCH, DataSize::mb(100));
        assert_eq!(c.end, SimInstant::from_secs(2));
    }

    #[test]
    fn external_pool_is_free_locally() {
        let p = StoragePool::new(PoolId(1), PoolConfig::external("tape"));
        let r = p.charge_io(SimInstant::from_secs(9), DataSize::tb(1));
        assert_eq!(r.start, r.end);
        assert!(p.devices().is_none());
        assert!(p.is_external());
    }

    #[test]
    fn usage_accounting() {
        let p = StoragePool::new(
            PoolId(0),
            PoolConfig::fast_disk("fast", 1, DataSize::mb(10)),
        );
        p.account_add(DataSize::mb(6));
        p.account_add(DataSize::mb(6));
        let u = p.usage();
        assert_eq!(u.files, 2);
        assert!(u.over_capacity());
        assert!((u.occupancy() - 1.2).abs() < 1e-9);
        p.account_remove(DataSize::mb(6));
        assert!(!p.usage().over_capacity());
        p.account_resize(DataSize::mb(6), DataSize::mb(2));
        assert_eq!(p.usage().used, DataSize::mb(2));
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn internal_pool_requires_devices() {
        let mut cfg = PoolConfig::fast_disk("x", 1, DataSize::ZERO);
        cfg.devices = 0;
        let _ = StoragePool::new(PoolId(0), cfg);
    }
}
