//! # copra-pfs — a GPFS-like parallel file system
//!
//! The archive side of the paper's system is IBM GPFS 3.2, chosen for its
//! ILM features (§4.2.1). This crate reproduces the surface the rest of the
//! system consumes:
//!
//! * **Storage pools** (§4.2.1): classes of service backed by device banks —
//!   a fast FC pool where data lands, a slow pool for small files, and
//!   *external* pools that hand file lists to the tape backend.
//! * **Placement rules**: evaluated at create time to choose a pool.
//! * **ILM policy engine**: GPFS-style MIGRATE/LIST rules with a predicate
//!   language (size, mtime/atime age, uid, path globs, pool, HSM state),
//!   evaluated by a rayon-parallel inode scan. GPFS's benchmark claim —
//!   one million inodes scanned in ten minutes — is reproduced by
//!   `bench/tbl_scan`.
//! * **DMAPI managed regions** (§4.2.2): HSM punches holes in migrated
//!   files, leaving a stub whose `stat` still reports the logical size;
//!   reading a stub raises a recall event instead of returning data.
//!
//! The scratch file system (PanFS in the paper) is the same type with
//! different device parameters and no external pools.

pub mod glob;
pub mod hsmstate;
pub mod pfs;
pub mod policy;
pub mod pool;

pub use glob::wildcard_match;
pub use hsmstate::HsmState;
pub use pfs::{Pfs, PfsBuilder, ReadOutcome};
pub use policy::{Action, Cmp, FileRecord, PolicyEngine, Predicate, Rule, ScanReport};
pub use pool::{PoolConfig, PoolId, StoragePool};
