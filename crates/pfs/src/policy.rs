//! The ILM policy engine.
//!
//! GPFS policies are SQL-ish rules (`RULE 'x' MIGRATE FROM POOL 'fast' TO
//! POOL 'tape' WHERE FILE_SIZE < ...`). We model them as data: a [`Rule`]
//! couples an [`Action`] with a [`Predicate`] tree. The engine evaluates all
//! rules over a snapshot of the namespace with a rayon-parallel scan —
//! first-matching-rule-wins per file, as in GPFS.
//!
//! §4.2.4 of the paper is explicit that the *migration* rules are used only
//! in LIST mode by the integrated system (the custom parallel migrator does
//! the actual movement); both modes are supported here so the naive
//! GPFS-driven migration can serve as the T-MIGR baseline.

use crate::glob::wildcard_match;
use crate::hsmstate::HsmState;
use copra_simtime::{SimDuration, SimInstant};
use copra_vfs::Ino;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// Everything a policy predicate can see about one file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileRecord {
    pub path: String,
    pub ino: Ino,
    /// Logical size (stub files report their pre-punch size).
    pub size: u64,
    pub uid: u32,
    pub mtime: SimInstant,
    pub atime: SimInstant,
    pub pool: String,
    pub hsm: HsmState,
}

/// Comparison operator for scalar predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl Cmp {
    fn holds<T: PartialOrd>(self, lhs: T, rhs: T) -> bool {
        match self {
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
        }
    }
}

/// Predicate tree over [`FileRecord`]s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true (`WHERE TRUE`).
    True,
    /// Compare file size in bytes.
    SizeBytes(Cmp, u64),
    /// Compare time since last modification (age = now − mtime).
    MtimeAge(Cmp, SimDuration),
    /// Compare time since last access.
    AtimeAge(Cmp, SimDuration),
    /// Compare owner uid.
    Uid(Cmp, u32),
    /// File path lies under this directory prefix.
    Under(String),
    /// Final path component matches this wildcard pattern.
    NameMatches(String),
    /// File currently placed in the named pool.
    InPool(String),
    /// File is in the given HSM residency state.
    Hsm(HsmState),
    Not(Box<Predicate>),
    All(Vec<Predicate>),
    Any(Vec<Predicate>),
}

impl Predicate {
    pub fn eval(&self, rec: &FileRecord, now: SimInstant) -> bool {
        match self {
            Predicate::True => true,
            Predicate::SizeBytes(cmp, v) => cmp.holds(rec.size, *v),
            Predicate::MtimeAge(cmp, age) => cmp.holds(now.saturating_since(rec.mtime), *age),
            Predicate::AtimeAge(cmp, age) => cmp.holds(now.saturating_since(rec.atime), *age),
            Predicate::Uid(cmp, v) => cmp.holds(rec.uid, *v),
            Predicate::Under(prefix) => copra_vfs::is_under(&rec.path, prefix),
            Predicate::NameMatches(pat) => {
                let name = rec.path.rsplit('/').next().unwrap_or("");
                wildcard_match(pat, name)
            }
            Predicate::InPool(p) => rec.pool == *p,
            Predicate::Hsm(s) => rec.hsm == *s,
            Predicate::Not(inner) => !inner.eval(rec, now),
            Predicate::All(ps) => ps.iter().all(|p| p.eval(rec, now)),
            Predicate::Any(ps) => ps.iter().any(|p| p.eval(rec, now)),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Predicate {
        match self {
            Predicate::All(mut v) => {
                v.push(other);
                Predicate::All(v)
            }
            p => Predicate::All(vec![p, other]),
        }
    }
}

/// What a matched rule asks for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Initial placement into a pool (evaluated at create time).
    Place { pool: String },
    /// Move data to another (possibly external) pool.
    Migrate { to_pool: String },
    /// Emit the file onto a named candidate list (the integration's
    /// preferred mode, §4.2.4).
    List { list: String },
    /// Stop processing this file (GPFS `EXCLUDE`).
    Exclude,
}

/// One policy rule. Rules are evaluated in order; the first whose predicate
/// holds decides the file (GPFS semantics).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    pub name: String,
    pub action: Action,
    pub predicate: Predicate,
}

impl Rule {
    pub fn list(name: &str, list: &str, predicate: Predicate) -> Rule {
        Rule {
            name: name.to_string(),
            action: Action::List {
                list: list.to_string(),
            },
            predicate,
        }
    }

    pub fn migrate(name: &str, to_pool: &str, predicate: Predicate) -> Rule {
        Rule {
            name: name.to_string(),
            action: Action::Migrate {
                to_pool: to_pool.to_string(),
            },
            predicate,
        }
    }

    pub fn exclude(name: &str, predicate: Predicate) -> Rule {
        Rule {
            name: name.to_string(),
            action: Action::Exclude,
            predicate,
        }
    }
}

/// Result of a policy scan.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScanReport {
    /// Files matched per LIST rule, keyed by list name.
    pub lists: BTreeMap<String, Vec<FileRecord>>,
    /// Files matched per MIGRATE rule, keyed by destination pool.
    pub migrations: BTreeMap<String, Vec<FileRecord>>,
    /// Total regular files examined.
    pub scanned: usize,
    /// Wall-clock time of the scan (real time — this is the "1M inodes in
    /// 10 minutes" figure, which is about scan machinery, not device I/O).
    pub wall_seconds: f64,
    /// Scan rate in inodes per wall second.
    pub inodes_per_sec: f64,
}

/// The scanning engine.
#[derive(Debug, Clone, Default)]
pub struct PolicyEngine {
    rules: Vec<Rule>,
}

impl PolicyEngine {
    pub fn new(rules: Vec<Rule>) -> Self {
        PolicyEngine { rules }
    }

    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Index of the first rule whose predicate holds for `rec`, if any
    /// (GPFS first-match-wins semantics). This is the per-file kernel that
    /// streaming scans fuse into their namespace traversal: callers tag
    /// matches as they go instead of materializing every record first.
    pub fn classify(&self, rec: &FileRecord, now: SimInstant) -> Option<usize> {
        self.rules
            .iter()
            .position(|rule| rule.predicate.eval(rec, now))
    }

    /// Build a [`ScanReport`] from `(matched rule index, record)` pairs.
    /// Each group is sorted by path, so the report is identical no matter
    /// how many threads produced the tags or in what order they arrived.
    pub fn assemble(
        &self,
        tagged: Vec<(usize, FileRecord)>,
        scanned: usize,
        wall_seconds: f64,
    ) -> ScanReport {
        let mut report = ScanReport {
            scanned,
            ..ScanReport::default()
        };
        let mut groups: BTreeMap<usize, Vec<FileRecord>> = BTreeMap::new();
        for (idx, rec) in tagged {
            groups.entry(idx).or_default().push(rec);
        }
        for (idx, mut files) in groups {
            files.sort_by(|a, b| a.path.cmp(&b.path));
            match &self.rules[idx].action {
                Action::List { list } => {
                    report.lists.entry(list.clone()).or_default().extend(files)
                }
                Action::Migrate { to_pool } => report
                    .migrations
                    .entry(to_pool.clone())
                    .or_default()
                    .extend(files),
                Action::Exclude | Action::Place { .. } => {}
            }
        }
        report.wall_seconds = wall_seconds;
        report.inodes_per_sec = if wall_seconds > 0.0 {
            scanned as f64 / wall_seconds
        } else {
            f64::INFINITY
        };
        report
    }

    /// Evaluate the rule set over a pre-built snapshot of file records.
    /// Parallel over records (rayon); per-record evaluation applies rules
    /// in order and stops at the first match.
    ///
    /// [`crate::Pfs::run_policy`] no longer goes through this entry point —
    /// it fuses [`PolicyEngine::classify`] into the sharded namespace scan
    /// so unmatched files are dropped on the spot. This slice form remains
    /// for callers that already hold records (dumps, replays, unit tests).
    pub fn scan(&self, records: &[FileRecord], now: SimInstant) -> ScanReport {
        let t0 = Instant::now();
        let tagged: Vec<(usize, FileRecord)> = records
            .par_iter()
            .filter_map(|rec| self.classify(rec, now).map(|idx| (idx, rec.clone())))
            .collect();
        self.assemble(tagged, records.len(), t0.elapsed().as_secs_f64())
    }

    /// Placement decision for a new file: the pool named by the first
    /// matching `Place` rule, if any. Non-`Place` rules are skipped (GPFS
    /// keeps placement and management policies separate).
    pub fn place(&self, rec: &FileRecord, now: SimInstant) -> Option<&str> {
        self.rules.iter().find_map(|r| match &r.action {
            Action::Place { pool } if r.predicate.eval(rec, now) => Some(pool.as_str()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(path: &str, size: u64, pool: &str, hsm: HsmState) -> FileRecord {
        FileRecord {
            path: path.to_string(),
            ino: Ino(1),
            size,
            uid: 1000,
            mtime: SimInstant::EPOCH,
            atime: SimInstant::EPOCH,
            pool: pool.to_string(),
            hsm,
        }
    }

    #[test]
    fn scalar_predicates() {
        let r = rec("/data/a.dat", 500, "fast", HsmState::Resident);
        let now = SimInstant::from_secs(100);
        assert!(Predicate::SizeBytes(Cmp::Lt, 1000).eval(&r, now));
        assert!(!Predicate::SizeBytes(Cmp::Gt, 1000).eval(&r, now));
        assert!(Predicate::MtimeAge(Cmp::Ge, SimDuration::from_secs(100)).eval(&r, now));
        assert!(!Predicate::MtimeAge(Cmp::Gt, SimDuration::from_secs(100)).eval(&r, now));
        assert!(Predicate::Uid(Cmp::Eq, 1000).eval(&r, now));
        assert!(Predicate::Under("/data".to_string()).eval(&r, now));
        assert!(!Predicate::Under("/other".to_string()).eval(&r, now));
        assert!(Predicate::NameMatches("*.dat".to_string()).eval(&r, now));
        assert!(Predicate::InPool("fast".to_string()).eval(&r, now));
        assert!(Predicate::Hsm(HsmState::Resident).eval(&r, now));
    }

    #[test]
    fn combinators() {
        let r = rec("/data/a.dat", 500, "fast", HsmState::Resident);
        let now = SimInstant::EPOCH;
        let p = Predicate::SizeBytes(Cmp::Lt, 1000).and(Predicate::InPool("fast".to_string()));
        assert!(p.eval(&r, now));
        assert!(!Predicate::Not(Box::new(p.clone())).eval(&r, now));
        assert!(Predicate::Any(vec![Predicate::SizeBytes(Cmp::Gt, 1_000_000), p]).eval(&r, now));
        assert!(Predicate::All(vec![]).eval(&r, now)); // vacuous truth
        assert!(!Predicate::Any(vec![]).eval(&r, now));
    }

    #[test]
    fn first_match_wins_and_exclude_stops() {
        let engine = PolicyEngine::new(vec![
            Rule::exclude("skip-tmp", Predicate::NameMatches("*.tmp".to_string())),
            Rule::list("small", "small-files", Predicate::SizeBytes(Cmp::Lt, 1000)),
            Rule::migrate("rest", "tape", Predicate::True),
        ]);
        let records = vec![
            rec("/a/x.tmp", 10, "fast", HsmState::Resident),
            rec("/a/small", 10, "fast", HsmState::Resident),
            rec("/a/big", 10_000, "fast", HsmState::Resident),
        ];
        let report = engine.scan(&records, SimInstant::EPOCH);
        assert_eq!(report.scanned, 3);
        assert_eq!(report.lists["small-files"].len(), 1);
        assert_eq!(report.lists["small-files"][0].path, "/a/small");
        assert_eq!(report.migrations["tape"].len(), 1);
        assert_eq!(report.migrations["tape"][0].path, "/a/big");
    }

    #[test]
    fn scan_output_is_sorted_and_deterministic() {
        let engine = PolicyEngine::new(vec![Rule::list("all", "all", Predicate::True)]);
        let records: Vec<_> = (0..100)
            .rev()
            .map(|i| rec(&format!("/f/{i:03}"), i, "fast", HsmState::Resident))
            .collect();
        let report = engine.scan(&records, SimInstant::EPOCH);
        let paths: Vec<_> = report.lists["all"].iter().map(|r| r.path.clone()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
    }

    #[test]
    fn placement_uses_only_place_rules() {
        let engine = PolicyEngine::new(vec![
            Rule::list("noise", "x", Predicate::True),
            Rule {
                name: "small-to-slow".to_string(),
                action: Action::Place {
                    pool: "slow".to_string(),
                },
                predicate: Predicate::SizeBytes(Cmp::Lt, 1024),
            },
            Rule {
                name: "default".to_string(),
                action: Action::Place {
                    pool: "fast".to_string(),
                },
                predicate: Predicate::True,
            },
        ]);
        let small = rec("/s", 10, "", HsmState::Resident);
        let big = rec("/b", 1_000_000, "", HsmState::Resident);
        assert_eq!(engine.place(&small, SimInstant::EPOCH), Some("slow"));
        assert_eq!(engine.place(&big, SimInstant::EPOCH), Some("fast"));
    }
}
