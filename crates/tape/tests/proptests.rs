//! Property tests for the tape library's mechanical invariants.

use copra_simtime::{DataSize, SimInstant};
use copra_tape::{DriveId, TapeAddress, TapeError, TapeId, TapeLibrary, TapeTiming};
use copra_vfs::Content;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Mount { drive: u8, tape: u8 },
    Dismount { drive: u8 },
    Write { drive: u8, agent: u8, len: u32 },
    ReadBack { nth: u8, drive: u8, agent: u8 },
    Delete { nth: u8 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..3, 0u8..4).prop_map(|(drive, tape)| Op::Mount { drive, tape }),
            (0u8..3).prop_map(|drive| Op::Dismount { drive }),
            (0u8..3, 0u8..3, 1u32..2_000_000).prop_map(|(drive, agent, len)| Op::Write {
                drive,
                agent,
                len
            }),
            (0u8..32, 0u8..3, 0u8..3).prop_map(|(nth, drive, agent)| Op::ReadBack {
                nth,
                drive,
                agent
            }),
            (0u8..32).prop_map(|nth| Op::Delete { nth }),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under arbitrary operation sequences:
    /// * every successful write yields a fresh unique (tape, seq) address;
    /// * reading a live object returns exactly what was written;
    /// * reading a deleted object fails with ObjectDeleted;
    /// * `live_objects` equals the model's view;
    /// * all reservations move completion time monotonically per drive.
    #[test]
    fn tape_model(ops in ops()) {
        let lib = TapeLibrary::new(3, 4, TapeTiming::lto4());
        // model: addr -> (objid, content-len, alive)
        let mut model: BTreeMap<TapeAddress, (u64, u64, bool)> = BTreeMap::new();
        let mut written: Vec<TapeAddress> = Vec::new();
        let mut next_objid = 1u64;
        let mut now = SimInstant::EPOCH;

        for op in ops {
            match op {
                Op::Mount { drive, tape } => {
                    match lib.mount(DriveId(drive as u32), TapeId(tape as u32), now) {
                        Ok(t) => {
                            now = now.max(t);
                            prop_assert_eq!(
                                lib.mounted_tape(DriveId(drive as u32)).unwrap(),
                                Some(TapeId(tape as u32))
                            );
                            prop_assert_eq!(
                                lib.drive_holding(TapeId(tape as u32)),
                                Some(DriveId(drive as u32))
                            );
                        }
                        Err(TapeError::TapeInUse { tape: t, drive: d }) => {
                            // the holder must really hold it, and not be us
                            prop_assert_eq!(lib.drive_holding(t), Some(d));
                            prop_assert!(d != DriveId(drive as u32));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("mount: {e}"))),
                    }
                }
                Op::Dismount { drive } => {
                    let t = lib.dismount(DriveId(drive as u32), now).unwrap();
                    now = now.max(t);
                    prop_assert_eq!(lib.mounted_tape(DriveId(drive as u32)).unwrap(), None);
                }
                Op::Write { drive, agent, len } => {
                    let objid = next_objid;
                    let content = Content::synthetic(objid, len as u64);
                    match lib.write_object(DriveId(drive as u32), agent as u32, objid, content, now) {
                        Ok((addr, t)) => {
                            now = now.max(t);
                            prop_assert!(!model.contains_key(&addr), "address reuse: {addr:?}");
                            model.insert(addr, (objid, len as u64, true));
                            written.push(addr);
                            next_objid += 1;
                        }
                        Err(TapeError::NotMounted(_)) | Err(TapeError::TapeFull(_)) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("write: {e}"))),
                    }
                }
                Op::ReadBack { nth, drive, agent } => {
                    if written.is_empty() {
                        continue;
                    }
                    let addr = written[nth as usize % written.len()];
                    let (objid, len, alive) = model[&addr];
                    match lib.read_object(DriveId(drive as u32), agent as u32, addr, now) {
                        Ok((content, t)) => {
                            now = now.max(t);
                            prop_assert!(alive, "read of deleted object succeeded");
                            prop_assert_eq!(content.len(), len);
                            prop_assert!(content.eq_content(&Content::synthetic(objid, len)));
                            // reading requires the right tape in the drive
                            prop_assert_eq!(
                                lib.mounted_tape(DriveId(drive as u32)).unwrap(),
                                Some(addr.tape)
                            );
                        }
                        Err(TapeError::WrongTape { .. }) => {}
                        Err(TapeError::ObjectDeleted(a)) => {
                            prop_assert_eq!(a, addr);
                            prop_assert!(!alive);
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("read: {e}"))),
                    }
                }
                Op::Delete { nth } => {
                    if written.is_empty() {
                        continue;
                    }
                    let addr = written[nth as usize % written.len()];
                    let alive = model[&addr].2;
                    match lib.delete_object(addr) {
                        Ok(()) => {
                            prop_assert!(alive, "double delete succeeded");
                            model.get_mut(&addr).unwrap().2 = false;
                        }
                        Err(TapeError::ObjectDeleted(_)) => prop_assert!(!alive),
                        Err(e) => return Err(TestCaseError::fail(format!("delete: {e}"))),
                    }
                }
            }
        }
        // Library truth equals model truth.
        let mut live: Vec<(TapeAddress, u64, u64)> = model
            .iter()
            .filter(|(_, (_, _, alive))| *alive)
            .map(|(a, (o, l, _))| (*a, *o, *l))
            .collect();
        live.sort();
        prop_assert_eq!(lib.live_objects(), live);
    }

    /// Sequential writes to one tape produce strictly increasing sequence
    /// numbers and contiguous byte positions.
    #[test]
    fn writes_are_append_only(lens in prop::collection::vec(1u32..5_000_000, 1..20)) {
        let lib = TapeLibrary::new(1, 1, TapeTiming::lto4());
        let mut now = lib.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        let mut expected_start = 0u64;
        for (i, len) in lens.iter().enumerate() {
            let (addr, t) = lib
                .write_object(DriveId(0), 0, i as u64, Content::synthetic(1, *len as u64), now)
                .unwrap();
            now = t;
            prop_assert_eq!(addr.seq, i as u32);
            let start = lib
                .with_cartridge(TapeId(0), |c| c.record(addr.seq).unwrap().start)
                .unwrap();
            prop_assert_eq!(start, expected_start);
            expected_start += *len as u64;
        }
        let written = lib
            .with_cartridge(TapeId(0), |c| c.bytes_written())
            .unwrap();
        prop_assert_eq!(written, expected_start);
        prop_assert_eq!(
            lib.tapes_with_space(DataSize::from_bytes(1)).is_empty(),
            expected_start + 1 > TapeTiming::lto4().capacity.as_bytes()
        );
    }
}
