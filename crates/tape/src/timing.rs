//! Tape drive timing parameters.

use copra_simtime::{Bandwidth, DataSize, SimDuration};
use serde::{Deserialize, Serialize};

/// Mechanical timing model for one drive generation.
///
/// The defaults ([`TapeTiming::lto4`]) are calibrated so the paper's §6.1
/// observation falls out: an 8 MB-per-transaction migration stream runs at
/// ≈4 MB/s against a ~120 MB/s rated drive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TapeTiming {
    /// Robot arm pick/move/place — serialized on the single library robot.
    pub robot_move: SimDuration,
    /// Drive load + thread, per mount (charged on the drive).
    pub mount: SimDuration,
    /// Unthread + unload + robot return, per dismount.
    pub unload: SimDuration,
    /// Reading and checking the volume label (charged on mount and on every
    /// storage-agent hand-off).
    pub label_verify: SimDuration,
    /// Stop/reposition/restart between write transactions ("backhitch").
    pub backhitch: SimDuration,
    /// Fixed component of a locate to an arbitrary record.
    pub locate_fixed: SimDuration,
    /// High-speed locate rate (bytes of tape passed per second).
    pub locate_rate: Bandwidth,
    /// Fixed component of a rewind.
    pub rewind_fixed: SimDuration,
    /// Rewind rate (bytes of tape passed per second).
    pub rewind_rate: Bandwidth,
    /// Streaming read/write bandwidth.
    pub stream: Bandwidth,
    /// Native cartridge capacity.
    pub capacity: DataSize,
}

impl TapeTiming {
    /// LTO-4 generation (the paper's hardware).
    pub fn lto4() -> Self {
        TapeTiming {
            robot_move: SimDuration::from_secs(8),
            mount: SimDuration::from_secs(15),
            unload: SimDuration::from_secs(20),
            label_verify: SimDuration::from_secs(3),
            backhitch: SimDuration::from_millis(1_930),
            locate_fixed: SimDuration::from_secs(3),
            // full 800 GB pass in ~60 s of high-speed locate
            locate_rate: Bandwidth::from_bytes_per_sec(13_300_000_000),
            rewind_fixed: SimDuration::from_secs(2),
            rewind_rate: Bandwidth::from_bytes_per_sec(13_300_000_000),
            stream: Bandwidth::mb_per_sec(120),
            capacity: DataSize::gb(800),
        }
    }

    /// An idealized frictionless drive (unit tests that want pure streaming
    /// numbers).
    pub fn frictionless(stream: Bandwidth, capacity: DataSize) -> Self {
        TapeTiming {
            robot_move: SimDuration::ZERO,
            mount: SimDuration::ZERO,
            unload: SimDuration::ZERO,
            label_verify: SimDuration::ZERO,
            backhitch: SimDuration::ZERO,
            locate_fixed: SimDuration::ZERO,
            locate_rate: Bandwidth::gb_per_sec(1_000),
            rewind_fixed: SimDuration::ZERO,
            rewind_rate: Bandwidth::gb_per_sec(1_000),
            stream,
            capacity,
        }
    }

    /// Time for a locate across `distance` bytes of tape.
    pub fn locate_time(&self, distance: DataSize) -> SimDuration {
        if distance.is_zero() {
            return SimDuration::ZERO;
        }
        self.locate_fixed + self.locate_rate.time_for(distance)
    }

    /// Time to rewind from byte position `from` to beginning of tape.
    pub fn rewind_time(&self, from: DataSize) -> SimDuration {
        if from.is_zero() {
            return SimDuration::ZERO;
        }
        self.rewind_fixed + self.rewind_rate.time_for(from)
    }

    /// Effective rate for a stream of `file_size` writes, one transaction
    /// each — the §6.1 small-file arithmetic.
    pub fn effective_write_rate(&self, file_size: DataSize) -> Bandwidth {
        let per_file = self.backhitch + self.stream.time_for(file_size);
        copra_simtime::rate::achieved_rate(file_size, per_file)
    }
}

impl Default for TapeTiming {
    fn default() -> Self {
        TapeTiming::lto4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lto4_reproduces_the_small_file_collapse() {
        let t = TapeTiming::lto4();
        // §6.1: 8 MB files migrate at ~4 MB/s instead of ~100+ MB/s.
        let small = t.effective_write_rate(DataSize::mb(8)).as_mb_per_sec_f64();
        assert!((3.5..4.5).contains(&small), "8MB effective rate {small}");
        // Large files approach the rated streaming speed.
        let big = t.effective_write_rate(DataSize::gb(10)).as_mb_per_sec_f64();
        assert!(big > 115.0, "10GB effective rate {big}");
    }

    #[test]
    fn locate_and_rewind_scale_with_distance() {
        let t = TapeTiming::lto4();
        let near = t.locate_time(DataSize::gb(1));
        let far = t.locate_time(DataSize::gb(700));
        assert!(far > near);
        assert!(t.rewind_time(DataSize::ZERO).is_zero());
        assert!(t.locate_time(DataSize::ZERO).is_zero());
        // full-tape pass takes on the order of a minute
        let full = t.locate_time(DataSize::gb(800)).as_secs_f64();
        assert!((50.0..90.0).contains(&full), "full locate {full}s");
    }

    #[test]
    fn frictionless_is_pure_streaming() {
        let t = TapeTiming::frictionless(Bandwidth::mb_per_sec(100), DataSize::gb(10));
        assert_eq!(
            t.effective_write_rate(DataSize::mb(8)).as_bytes_per_sec(),
            Bandwidth::mb_per_sec(100).as_bytes_per_sec()
        );
    }
}
