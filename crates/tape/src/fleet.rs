//! A fleet of tape libraries behind one routing facade.
//!
//! The paper's site has a single library; replication (TALICS³-style)
//! needs several, each with its own robot, drives and media, so a
//! whole-library outage fences one failure domain without touching the
//! others. [`TapeFleet`] owns N [`TapeLibrary`] instances with disjoint
//! global drive/tape id ranges and routes every address-carrying
//! operation to the owning library — callers keep using plain
//! [`TapeId`]/[`DriveId`]/[`TapeAddress`] values and never name a library
//! explicitly. A single-library fleet behaves bit-identically to the
//! bare library it wraps.

use crate::cartridge::{Cartridge, TapeAddress, TapeId};
use crate::library::{DriveId, LibraryId, LibraryStats, TapeError, TapeLibrary};
use crate::timing::TapeTiming;
use copra_faults::FaultPlane;
use copra_obs::Registry;
use copra_simtime::{DataSize, SimDuration, SimInstant, TimelineStats};
use copra_vfs::Content;
use std::sync::Arc;

/// N libraries, one id namespace. Cheap to clone (a `Vec` of shared
/// library handles).
#[derive(Clone)]
pub struct TapeFleet {
    libraries: Arc<Vec<TapeLibrary>>,
}

impl From<TapeLibrary> for TapeFleet {
    fn from(lib: TapeLibrary) -> Self {
        TapeFleet {
            libraries: Arc::new(vec![lib]),
        }
    }
}

impl TapeFleet {
    /// `count` identical libraries of `drives` drives and `tapes` volumes
    /// each, with disjoint global id ranges, all reporting into `obs`.
    pub fn new_uniform(
        count: usize,
        drives: usize,
        tapes: usize,
        timing: TapeTiming,
        obs: Arc<Registry>,
    ) -> Self {
        assert!(count > 0, "fleet needs at least one library");
        let libraries = (0..count)
            .map(|i| {
                TapeLibrary::with_identity(
                    LibraryId(i as u32),
                    (i * drives) as u32,
                    (i * tapes) as u32,
                    drives,
                    tapes,
                    timing,
                    obs.clone(),
                )
            })
            .collect();
        TapeFleet {
            libraries: Arc::new(libraries),
        }
    }

    /// The member libraries, in id order.
    pub fn libraries(&self) -> &[TapeLibrary] {
        &self.libraries
    }

    pub fn library_count(&self) -> usize {
        self.libraries.len()
    }

    /// The library owning `tape`.
    pub fn library_for_tape(&self, tape: TapeId) -> Result<&TapeLibrary, TapeError> {
        self.libraries
            .iter()
            .find(|l| l.owns_tape(tape))
            .ok_or(TapeError::NoSuchTape(tape))
    }

    /// The library owning `drive`.
    pub fn library_for_drive(&self, drive: DriveId) -> Result<&TapeLibrary, TapeError> {
        self.libraries
            .iter()
            .find(|l| l.owns_drive(drive))
            .ok_or(TapeError::NoSuchDrive(drive))
    }

    /// Which library id owns `tape`, if any.
    pub fn library_of_tape(&self, tape: TapeId) -> Option<LibraryId> {
        self.library_for_tape(tape).ok().map(|l| l.lib_id())
    }

    /// The shared observability registry (every library reports into it).
    pub fn obs(&self) -> &Arc<Registry> {
        self.libraries[0].obs()
    }

    /// The (uniform) drive timing model.
    pub fn timing(&self) -> &TapeTiming {
        self.libraries[0].timing()
    }

    /// Arm a fault plane on every member library.
    pub fn arm_faults(&self, plane: Arc<FaultPlane>) {
        for l in self.libraries.iter() {
            l.arm_faults(plane.clone());
        }
    }

    /// The armed fault plane, if any.
    pub fn armed_faults(&self) -> Option<Arc<FaultPlane>> {
        self.libraries[0].armed_faults()
    }

    /// Total drives across the fleet.
    pub fn drive_count(&self) -> usize {
        self.libraries.iter().map(|l| l.drive_count()).sum()
    }

    /// Total volumes across the fleet.
    pub fn tape_count(&self) -> usize {
        self.libraries.iter().map(|l| l.tape_count()).sum()
    }

    /// Every drive id in the fleet, in library then id order.
    pub fn drives(&self) -> impl Iterator<Item = DriveId> + '_ {
        self.libraries.iter().flat_map(|l| l.drives())
    }

    pub fn is_fenced(&self, drive: DriveId) -> Result<bool, TapeError> {
        self.library_for_drive(drive)?.is_fenced(drive)
    }

    /// Is the library owning `tape` offline at `now`?
    pub fn tape_library_offline(&self, tape: TapeId, now: SimInstant) -> bool {
        self.library_for_tape(tape)
            .map(|l| l.is_offline(now))
            .unwrap_or(false)
    }

    pub fn with_cartridge<R>(
        &self,
        id: TapeId,
        f: impl FnOnce(&Cartridge) -> R,
    ) -> Result<R, TapeError> {
        self.library_for_tape(id)?.with_cartridge(id, f)
    }

    pub fn mounted_tape(&self, drive: DriveId) -> Result<Option<TapeId>, TapeError> {
        self.library_for_drive(drive)?.mounted_tape(drive)
    }

    pub fn drive_holding(&self, tape: TapeId) -> Option<DriveId> {
        self.library_for_tape(tape).ok()?.drive_holding(tape)
    }

    /// Volumes with at least `len` bytes free, globally emptiest-first
    /// across every library (ties break on tape id).
    pub fn tapes_with_space(&self, len: DataSize) -> Vec<TapeId> {
        let mut v: Vec<(u64, TapeId)> = self
            .libraries
            .iter()
            .flat_map(|l| l.tape_fill_levels(len))
            .collect();
        v.sort_unstable();
        v.into_iter().map(|(_, id)| id).collect()
    }

    /// Volumes with space inside library `lib` only — replica placement
    /// pins each copy to its own failure domain.
    pub fn tapes_with_space_in(&self, lib: LibraryId, len: DataSize) -> Vec<TapeId> {
        self.libraries
            .iter()
            .find(|l| l.lib_id() == lib)
            .map(|l| l.tapes_with_space(len))
            .unwrap_or_default()
    }

    pub fn mount(
        &self,
        drive: DriveId,
        tape: TapeId,
        ready: SimInstant,
    ) -> Result<SimInstant, TapeError> {
        self.library_for_drive(drive)?.mount(drive, tape, ready)
    }

    pub fn dismount(&self, drive: DriveId, ready: SimInstant) -> Result<SimInstant, TapeError> {
        self.library_for_drive(drive)?.dismount(drive, ready)
    }

    pub fn ensure_mounted(
        &self,
        tape: TapeId,
        ready: SimInstant,
    ) -> Result<(DriveId, SimInstant), TapeError> {
        self.library_for_tape(tape)?.ensure_mounted(tape, ready)
    }

    pub fn write_object(
        &self,
        drive: DriveId,
        agent: u32,
        objid: u64,
        content: Content,
        ready: SimInstant,
    ) -> Result<(TapeAddress, SimInstant), TapeError> {
        self.library_for_drive(drive)?
            .write_object(drive, agent, objid, content, ready)
    }

    pub fn read_object(
        &self,
        drive: DriveId,
        agent: u32,
        addr: TapeAddress,
        ready: SimInstant,
    ) -> Result<(Content, SimInstant), TapeError> {
        self.library_for_drive(drive)?
            .read_object(drive, agent, addr, ready)
    }

    pub fn read_object_range(
        &self,
        drive: DriveId,
        agent: u32,
        addr: TapeAddress,
        offset: u64,
        len: u64,
        ready: SimInstant,
    ) -> Result<(Content, SimInstant), TapeError> {
        self.library_for_drive(drive)?
            .read_object_range(drive, agent, addr, offset, len, ready)
    }

    pub fn delete_object(&self, addr: TapeAddress) -> Result<(), TapeError> {
        self.library_for_tape(addr.tape)?.delete_object(addr)
    }

    pub fn damage_record(&self, addr: TapeAddress) -> Result<(), TapeError> {
        self.library_for_tape(addr.tape)?.damage_record(addr)
    }

    pub fn reclaimable_volumes(&self, threshold: f64) -> Vec<TapeId> {
        self.libraries
            .iter()
            .flat_map(|l| l.reclaimable_volumes(threshold))
            .collect()
    }

    pub fn erase_volume(&self, tape: TapeId) -> Result<(), TapeError> {
        self.library_for_tape(tape)?.erase_volume(tape)
    }

    /// All live objects across every library, in (tape, seq) order.
    pub fn live_objects(&self) -> Vec<(TapeAddress, u64, u64)> {
        self.libraries
            .iter()
            .flat_map(|l| l.live_objects())
            .collect()
    }

    /// Cheapest-replica routing input: estimated time-to-first-byte for
    /// the record at `addr`, `None` when its library is offline or the
    /// record is gone.
    pub fn recall_cost_estimate(&self, addr: TapeAddress, now: SimInstant) -> Option<SimDuration> {
        self.library_for_tape(addr.tape)
            .ok()?
            .recall_cost_estimate(addr, now)
    }

    /// Fleet-wide mechanical statistics (per-drive in global id order).
    pub fn stats(&self) -> LibraryStats {
        let mut out = LibraryStats::default();
        for l in self.libraries.iter() {
            let s = l.stats();
            out.per_drive.extend(s.per_drive);
            out.totals.mounts += s.totals.mounts;
            out.totals.dismounts += s.totals.dismounts;
            out.totals.label_verifies += s.totals.label_verifies;
            out.totals.rewinds += s.totals.rewinds;
            out.totals.locates += s.totals.locates;
            out.totals.backhitches += s.totals.backhitches;
            out.totals.bytes_written += s.totals.bytes_written;
            out.totals.bytes_read += s.totals.bytes_read;
            out.totals.handoffs += s.totals.handoffs;
            out.drain = out.drain.max(s.drain);
            out.busy += s.busy;
        }
        out
    }

    /// Per-drive timeline statistics in global drive-id order.
    pub fn drive_timeline_stats(&self) -> Vec<TimelineStats> {
        self.libraries
            .iter()
            .flat_map(|l| l.drive_timeline_stats())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> TapeFleet {
        TapeFleet::new_uniform(n, 2, 4, TapeTiming::lto4(), Registry::new())
    }

    #[test]
    fn routing_by_global_ids_reaches_the_owning_library() {
        let f = fleet(3);
        assert_eq!(f.library_count(), 3);
        assert_eq!(f.drive_count(), 6);
        assert_eq!(f.tape_count(), 12);
        assert_eq!(f.library_of_tape(TapeId(0)), Some(LibraryId(0)));
        assert_eq!(f.library_of_tape(TapeId(5)), Some(LibraryId(1)));
        assert_eq!(f.library_of_tape(TapeId(11)), Some(LibraryId(2)));
        assert_eq!(f.library_of_tape(TapeId(12)), None);
        // Write in library 1, read back through routed ids only.
        let (d, t0) = f.ensure_mounted(TapeId(5), SimInstant::EPOCH).unwrap();
        assert!(f.library_for_drive(d).unwrap().lib_id() == LibraryId(1));
        let content = Content::synthetic(5, 2 << 20);
        let (addr, t1) = f.write_object(d, 1, 77, content.clone(), t0).unwrap();
        assert_eq!(addr.tape, TapeId(5));
        let (back, _) = f.read_object(d, 1, addr, t1).unwrap();
        assert!(back.eq_content(&content));
        assert_eq!(f.live_objects().len(), 1);
    }

    #[test]
    fn single_library_fleet_matches_bare_library_timings() {
        let bare = TapeLibrary::new(2, 4, TapeTiming::lto4());
        let f: TapeFleet = TapeLibrary::new(2, 4, TapeTiming::lto4()).into();
        let (db, tb) = bare.ensure_mounted(TapeId(0), SimInstant::EPOCH).unwrap();
        let (df, tf) = f.ensure_mounted(TapeId(0), SimInstant::EPOCH).unwrap();
        assert_eq!((db, tb), (df, tf));
        let c = Content::synthetic(1, 8 << 20);
        let (_, wb) = bare.write_object(db, 1, 1, c.clone(), tb).unwrap();
        let (_, wf) = f.write_object(df, 1, 1, c, tf).unwrap();
        assert_eq!(wb, wf, "fleet wrapper adds zero simulated cost");
    }

    #[test]
    fn allocation_order_is_globally_emptiest_first() {
        let f = fleet(2);
        let (d, t0) = f.ensure_mounted(TapeId(0), SimInstant::EPOCH).unwrap();
        f.write_object(d, 1, 1, Content::synthetic(1, 1 << 20), t0)
            .unwrap();
        let order = f.tapes_with_space(DataSize::mb(1));
        assert_eq!(order.len(), 8);
        // The written tape sorts last; empty tapes sort by id across
        // libraries.
        assert_eq!(order[0], TapeId(1));
        assert_eq!(*order.last().unwrap(), TapeId(0));
        assert!(order.contains(&TapeId(4)), "library 1 volumes included");
        // Per-library constrained allocation stays inside the domain.
        let in1 = f.tapes_with_space_in(LibraryId(1), DataSize::mb(1));
        assert_eq!(in1, vec![TapeId(4), TapeId(5), TapeId(6), TapeId(7)]);
    }

    #[test]
    fn offline_routing_flags_only_the_dead_library() {
        let f = fleet(2);
        let now = SimInstant::EPOCH;
        let (d, t0) = f.ensure_mounted(TapeId(0), now).unwrap();
        let (a0, t1) = f
            .write_object(d, 1, 1, Content::synthetic(1, 1 << 20), t0)
            .unwrap();
        let (d1, t2) = f.ensure_mounted(TapeId(4), t1).unwrap();
        let (a1, t3) = f
            .write_object(d1, 1, 2, Content::synthetic(2, 1 << 20), t2)
            .unwrap();
        f.libraries()[0].set_offline(true);
        assert!(f.tape_library_offline(TapeId(0), t3));
        assert!(!f.tape_library_offline(TapeId(4), t3));
        assert!(f.recall_cost_estimate(a0, t3).is_none());
        assert!(f.recall_cost_estimate(a1, t3).is_some());
        assert!(matches!(
            f.ensure_mounted(TapeId(0), t3),
            Err(TapeError::LibraryOffline { .. })
        ));
        let (back, _) = f.read_object(d1, 1, a1, t3).unwrap();
        assert!(back.eq_content(&Content::synthetic(2, 1 << 20)));
    }
}
