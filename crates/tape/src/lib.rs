//! # copra-tape — tape library simulator
//!
//! The paper's backend is twenty-four LTO-4 drives behind a SAN (§4.3.1).
//! This crate models the *mechanics* that drive every tape phenomenon the
//! paper reports:
//!
//! * **streaming rate** — LTO-4 writes at ~120 MB/s when fed (§6.1 quotes
//!   the rated 100+ MB/s);
//! * **per-transaction backhitch** — HSM writes one file per transaction;
//!   the drive flushes and repositions between transactions, so millions of
//!   8 MB files migrate at ~4 MB/s (§6.1, a ~25× collapse);
//! * **mount / unload / robot** — moving a cartridge costs tens of seconds;
//! * **locate / rewind** — repositioning is proportional to byte distance,
//!   which is why unordered recalls thrash (§4.1.2-2);
//! * **label verification on agent hand-off** — in LAN-free operation a
//!   tape passed between storage agents is re-verified and rewound even
//!   without a physical dismount, the §6.2 "massive performance hit".
//!
//! Tapes store real object images ([`copra_vfs::Content`] descriptors), so
//! recall returns bit-identical data and reconciliation can enumerate
//! orphans; all timing flows through [`copra_simtime`].

pub mod cartridge;
pub mod fleet;
pub mod library;
pub mod timing;

pub use cartridge::{Cartridge, TapeAddress, TapeId, TapeRecord};
pub use fleet::TapeFleet;
pub use library::{DriveId, DriveStats, LibraryId, LibraryStats, TapeError, TapeLibrary};
pub use timing::TapeTiming;
