//! Cartridges and on-tape records.

use copra_simtime::DataSize;
use copra_vfs::Content;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cartridge identifier (volume serial).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TapeId(pub u32);

impl fmt::Display for TapeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VOL{:05}", self.0)
    }
}

/// Physical address of an object: which tape and which sequential record.
/// This is exactly the (Tape-ID, tape sequence number) pair the paper's
/// MySQL replica serves to PFTool (§4.2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TapeAddress {
    pub tape: TapeId,
    pub seq: u32,
}

/// One object written to tape.
#[derive(Debug, Clone)]
pub struct TapeRecord {
    pub seq: u32,
    pub objid: u64,
    pub len: u64,
    /// Byte position of the record start on tape.
    pub start: u64,
    /// Object image. `None` once the object has been deleted (tape space is
    /// not reclaimed — a dead record still occupies its span, as on real
    /// tape, until the volume is reclaimed wholesale).
    pub content: Option<Content>,
    /// Media damage flag: the span is unreadable (reads fail with a media
    /// error) but the object is still "live" in catalog terms.
    pub damaged: bool,
}

impl TapeRecord {
    pub fn is_deleted(&self) -> bool {
        self.content.is_none()
    }
}

/// A tape volume: an append-only sequence of records.
#[derive(Debug)]
pub struct Cartridge {
    id: TapeId,
    capacity: DataSize,
    records: Vec<TapeRecord>,
    bytes_written: u64,
}

impl Cartridge {
    pub fn new(id: TapeId, capacity: DataSize) -> Self {
        Cartridge {
            id,
            capacity,
            records: Vec::new(),
            bytes_written: 0,
        }
    }

    pub fn id(&self) -> TapeId {
        self.id
    }

    pub fn capacity(&self) -> DataSize {
        self.capacity
    }

    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    pub fn remaining(&self) -> DataSize {
        self.capacity
            .saturating_sub(DataSize::from_bytes(self.bytes_written))
    }

    pub fn record_count(&self) -> u32 {
        self.records.len() as u32
    }

    pub fn records(&self) -> &[TapeRecord] {
        &self.records
    }

    /// Append an object at end-of-data. Returns the new record's sequence
    /// number, or `None` if the volume lacks space.
    pub fn append(&mut self, objid: u64, content: Content) -> Option<u32> {
        let len = content.len();
        if self.bytes_written + len > self.capacity.as_bytes() {
            return None;
        }
        let seq = self.records.len() as u32;
        self.records.push(TapeRecord {
            seq,
            objid,
            len,
            start: self.bytes_written,
            content: Some(content),
            damaged: false,
        });
        self.bytes_written += len;
        Some(seq)
    }

    pub fn record(&self, seq: u32) -> Option<&TapeRecord> {
        self.records.get(seq as usize)
    }

    /// Byte position of a record's start (for seek-distance computation);
    /// `seq == record_count()` addresses end-of-data.
    pub fn position_of(&self, seq: u32) -> Option<u64> {
        if seq == self.records.len() as u32 {
            Some(self.bytes_written)
        } else {
            self.records.get(seq as usize).map(|r| r.start)
        }
    }

    /// Mark a record deleted (content dropped; span still occupied).
    /// Returns false if the seq is invalid or already deleted.
    pub fn delete(&mut self, seq: u32) -> bool {
        match self.records.get_mut(seq as usize) {
            Some(r) if r.content.is_some() => {
                r.content = None;
                true
            }
            _ => false,
        }
    }

    /// Live (non-deleted) object ids on this volume, in tape order.
    pub fn live_objects(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.records
            .iter()
            .filter(|r| !r.is_deleted())
            .map(|r| (r.seq, r.objid))
    }

    /// Bytes occupied by deleted records (reclaimable only by volume
    /// reclamation).
    pub fn dead_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.is_deleted())
            .map(|r| r.len)
            .sum()
    }

    /// Fraction of written bytes that are dead (TSM's reclamation
    /// threshold operates on this).
    pub fn reclaimable_fraction(&self) -> f64 {
        if self.bytes_written == 0 {
            0.0
        } else {
            self.dead_bytes() as f64 / self.bytes_written as f64
        }
    }

    /// Mark a record's media span damaged.
    pub fn damage(&mut self, seq: u32) -> bool {
        match self.records.get_mut(seq as usize) {
            Some(r) => {
                r.damaged = true;
                true
            }
            None => false,
        }
    }

    /// Wipe the volume back to scratch. Fails (returns false) while any
    /// live object remains — reclamation must move them first.
    pub fn erase(&mut self) -> bool {
        if self.records.iter().any(|r| !r.is_deleted()) {
            return false;
        }
        self.records.clear();
        self.bytes_written = 0;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_sequential_positions() {
        let mut c = Cartridge::new(TapeId(1), DataSize::mb(10));
        let s0 = c.append(100, Content::synthetic(1, 1_000_000)).unwrap();
        let s1 = c.append(101, Content::synthetic(2, 2_000_000)).unwrap();
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(c.record(0).unwrap().start, 0);
        assert_eq!(c.record(1).unwrap().start, 1_000_000);
        assert_eq!(c.bytes_written(), 3_000_000);
        assert_eq!(c.position_of(2), Some(3_000_000)); // EOD
        assert_eq!(c.position_of(3), None);
    }

    #[test]
    fn append_respects_capacity() {
        let mut c = Cartridge::new(TapeId(1), DataSize::mb(1));
        assert!(c.append(1, Content::synthetic(1, 900_000)).is_some());
        assert!(c.append(2, Content::synthetic(2, 200_000)).is_none());
        assert_eq!(c.remaining(), DataSize::from_bytes(100_000));
    }

    #[test]
    fn delete_keeps_span_occupied() {
        let mut c = Cartridge::new(TapeId(1), DataSize::mb(10));
        c.append(1, Content::synthetic(1, 1_000_000)).unwrap();
        c.append(2, Content::synthetic(2, 1_000_000)).unwrap();
        assert!(c.delete(0));
        assert!(!c.delete(0)); // already dead
        assert!(!c.delete(9)); // invalid
        assert_eq!(c.dead_bytes(), 1_000_000);
        assert_eq!(c.bytes_written(), 2_000_000); // span not reclaimed
        let live: Vec<_> = c.live_objects().collect();
        assert_eq!(live, vec![(1, 2)]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TapeId(42).to_string(), "VOL00042");
    }
}
