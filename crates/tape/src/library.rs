//! The tape library: drives, robot, and the operations HSM movers issue.
//!
//! Every operation returns the simulated instant at which it completes;
//! durations are computed from drive mechanics (mount, locate, backhitch,
//! hand-off rewinds) and reserved FIFO on the owning drive's timeline, so
//! concurrent movers queue realistically.

use crate::cartridge::{Cartridge, TapeAddress, TapeId};
use crate::timing::TapeTiming;
use copra_faults::FaultPlane;
use copra_obs::{Counter, EventKind, Registry};
use copra_simtime::{DataSize, SimDuration, SimInstant, Timeline, TimelineStats};
use copra_vfs::Content;
use parking_lot::{Mutex, RwLock};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Drive identifier. Globally unique across a multi-library fleet: each
/// library owns a contiguous id range starting at its drive base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DriveId(pub u32);

impl fmt::Display for DriveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "drive{}", self.0)
    }
}

/// Tape library identifier (site / robot complex).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LibraryId(pub u32);

impl fmt::Display for LibraryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lib{}", self.0)
    }
}

/// Why a tape operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TapeError {
    NoSuchDrive(DriveId),
    NoSuchTape(TapeId),
    NotMounted(DriveId),
    WrongTape {
        drive: DriveId,
        mounted: Option<TapeId>,
        wanted: TapeId,
    },
    TapeInUse {
        tape: TapeId,
        drive: DriveId,
    },
    TapeFull(TapeId),
    NoSuchRecord(TapeAddress),
    ObjectDeleted(TapeAddress),
    /// The record's media span is unreadable.
    MediaError(TapeAddress),
    /// Volume still holds live objects; reclamation must move them first.
    VolumeNotEmpty(TapeId),
    /// The drive hard-failed and is fenced; pick another drive.
    DriveFailed(DriveId),
    /// A transient I/O error (recoverable with a retry) after a latency
    /// spike on the drive.
    TransientIo(DriveId),
    /// Every drive in the library is fenced.
    NoHealthyDrive,
    /// The whole library (all drives + robot) is offline; recalls must
    /// fail over to a replica in another library until it returns.
    LibraryOffline {
        library: LibraryId,
    },
}

impl fmt::Display for TapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TapeError::NoSuchDrive(d) => write!(f, "no such drive: {d}"),
            TapeError::NoSuchTape(t) => write!(f, "no such tape: {t}"),
            TapeError::NotMounted(d) => write!(f, "no tape mounted in {d}"),
            TapeError::WrongTape {
                drive,
                mounted,
                wanted,
            } => write!(f, "{drive} has {mounted:?} mounted, wanted {wanted}"),
            TapeError::TapeInUse { tape, drive } => {
                write!(f, "{tape} is mounted in {drive}")
            }
            TapeError::TapeFull(t) => write!(f, "tape full: {t}"),
            TapeError::NoSuchRecord(a) => write!(f, "no record {} on {}", a.seq, a.tape),
            TapeError::ObjectDeleted(a) => {
                write!(f, "record {} on {} was deleted", a.seq, a.tape)
            }
            TapeError::MediaError(a) => {
                write!(f, "media error reading record {} on {}", a.seq, a.tape)
            }
            TapeError::VolumeNotEmpty(t) => {
                write!(f, "volume {t} still holds live objects")
            }
            TapeError::DriveFailed(d) => write!(f, "{d} hard-failed and is fenced"),
            TapeError::TransientIo(d) => write!(f, "transient I/O error on {d}"),
            TapeError::NoHealthyDrive => write!(f, "no healthy drive in the library"),
            TapeError::LibraryOffline { library } => {
                write!(
                    f,
                    "library {library} is offline (all drives and robot fenced)"
                )
            }
        }
    }
}

impl std::error::Error for TapeError {}

/// Per-drive mechanical counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriveStats {
    pub mounts: u64,
    pub dismounts: u64,
    pub label_verifies: u64,
    pub rewinds: u64,
    pub locates: u64,
    pub backhitches: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub handoffs: u64,
}

/// Aggregate library counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LibraryStats {
    pub per_drive: Vec<DriveStats>,
    pub totals: DriveStats,
    /// Latest completion instant across all drives.
    pub drain: SimInstant,
    /// Total busy time across all drives.
    pub busy: SimDuration,
}

struct DriveState {
    mounted: Option<TapeId>,
    /// Byte position of the head on the mounted tape.
    head_bytes: u64,
    /// Storage agent (node) that last touched this drive's tape. A change
    /// of agent forces rewind + label verification (§6.2).
    last_agent: Option<u32>,
    /// Hard-failed: the drive rejects all work and is skipped by
    /// [`TapeLibrary::ensure_mounted`]. Its volume was freed at fence time
    /// so recovery can remount it on a healthy drive.
    fenced: bool,
    timeline: Timeline,
    stats: DriveStats,
}

/// Cached registry handles: looked up once at construction so the
/// per-operation cost is a relaxed atomic add, not a map lookup.
struct TapeMetrics {
    mounts: Arc<Counter>,
    dismounts: Arc<Counter>,
    rewinds: Arc<Counter>,
    locates: Arc<Counter>,
    label_verifies: Arc<Counter>,
    backhitches: Arc<Counter>,
    handoffs: Arc<Counter>,
    bytes_written: Arc<Counter>,
    bytes_read: Arc<Counter>,
    backhitch_penalty_ns: Arc<copra_obs::Histogram>,
    handoff_penalty_ns: Arc<copra_obs::Histogram>,
    /// Per-drive (backhitch count, accumulated backhitch penalty ns).
    per_drive: Vec<(Arc<Counter>, Arc<Counter>)>,
}

impl TapeMetrics {
    fn new(obs: &Registry, drive_base: u32, drives: usize) -> Self {
        TapeMetrics {
            mounts: obs.counter("tape.mounts"),
            dismounts: obs.counter("tape.dismounts"),
            rewinds: obs.counter("tape.rewinds"),
            locates: obs.counter("tape.locates"),
            label_verifies: obs.counter("tape.label_verifies"),
            backhitches: obs.counter("tape.backhitches"),
            handoffs: obs.counter("tape.handoffs"),
            bytes_written: obs.counter("tape.bytes_written"),
            bytes_read: obs.counter("tape.bytes_read"),
            backhitch_penalty_ns: obs.histogram("tape.backhitch_penalty_ns"),
            handoff_penalty_ns: obs.histogram("tape.handoff_penalty_ns"),
            per_drive: (0..drives)
                .map(|i| {
                    let g = drive_base + i as u32;
                    (
                        obs.counter(&format!("tape.drive{g}.backhitches")),
                        obs.counter(&format!("tape.drive{g}.backhitch_penalty_ns")),
                    )
                })
                .collect(),
        }
    }
}

struct LibShared {
    /// Which library this is — drives every offline-fault consult and the
    /// global id namespace below.
    lib_id: LibraryId,
    /// First global drive id owned by this library.
    drive_base: u32,
    /// First global tape id owned by this library.
    tape_base: u32,
    timing: TapeTiming,
    robot: Timeline,
    drives: Vec<Mutex<DriveState>>,
    cartridges: Vec<Mutex<Cartridge>>,
    /// tape -> drive currently holding it
    mounted_in: Mutex<FxHashMap<u32, DriveId>>,
    /// Armed fault plane; `None` keeps every operation on the zero-cost
    /// fault-free path.
    faults: RwLock<Option<Arc<FaultPlane>>>,
    /// Manual whole-library outage toggle (tests / operator action); the
    /// fault plane's scheduled windows OR with this.
    forced_offline: std::sync::atomic::AtomicBool,
    /// Whether the current outage has been counted (one injection per
    /// outage, not per rejected operation).
    outage_noted: std::sync::atomic::AtomicBool,
    obs: Arc<Registry>,
    metrics: TapeMetrics,
}

/// The library handle (cheap to clone).
#[derive(Clone)]
pub struct TapeLibrary {
    shared: Arc<LibShared>,
}

impl TapeLibrary {
    /// A library with `drives` drives and `tapes` scratch volumes,
    /// reporting into a private metrics registry.
    pub fn new(drives: usize, tapes: usize, timing: TapeTiming) -> Self {
        Self::with_obs(drives, tapes, timing, Registry::new())
    }

    /// A library reporting into a shared observability registry. Identity
    /// defaults to library 0 with drive/tape ids starting at 0 (the
    /// single-library shape every pre-replication caller expects).
    pub fn with_obs(drives: usize, tapes: usize, timing: TapeTiming, obs: Arc<Registry>) -> Self {
        Self::with_identity(LibraryId(0), 0, 0, drives, tapes, timing, obs)
    }

    /// A library with an explicit identity and global id bases: drive ids
    /// are `drive_base..drive_base+drives`, tape ids
    /// `tape_base..tape_base+tapes`, so a [`crate::TapeFleet`] can route
    /// any `TapeAddress` or `DriveId` to its owning library.
    pub fn with_identity(
        lib_id: LibraryId,
        drive_base: u32,
        tape_base: u32,
        drives: usize,
        tapes: usize,
        timing: TapeTiming,
        obs: Arc<Registry>,
    ) -> Self {
        assert!(drives > 0 && tapes > 0, "library needs drives and tapes");
        let drive_states = (0..drives)
            .map(|i| {
                let g = drive_base + i as u32;
                Mutex::new(DriveState {
                    mounted: None,
                    head_bytes: 0,
                    last_agent: None,
                    fenced: false,
                    timeline: Timeline::new(
                        format!("tape-drive-{g}"),
                        timing.stream,
                        SimDuration::ZERO,
                    ),
                    stats: DriveStats::default(),
                })
            })
            .collect();
        let cartridges = (0..tapes)
            .map(|i| {
                Mutex::new(Cartridge::new(
                    TapeId(tape_base + i as u32),
                    timing.capacity,
                ))
            })
            .collect();
        let metrics = TapeMetrics::new(&obs, drive_base, drives);
        TapeLibrary {
            shared: Arc::new(LibShared {
                lib_id,
                drive_base,
                tape_base,
                timing,
                robot: Timeline::latency_only(format!("robot-{}", lib_id.0), SimDuration::ZERO),
                drives: drive_states,
                cartridges,
                mounted_in: Mutex::new(FxHashMap::default()),
                faults: RwLock::new(None),
                forced_offline: std::sync::atomic::AtomicBool::new(false),
                outage_noted: std::sync::atomic::AtomicBool::new(false),
                obs,
                metrics,
            }),
        }
    }

    /// The registry this library reports into.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.shared.obs
    }

    /// Arm a fault plane: from now on every operation boundary consults
    /// it for scheduled drive failures, media errors, robot jams and
    /// transient I/O.
    pub fn arm_faults(&self, plane: Arc<FaultPlane>) {
        *self.shared.faults.write() = Some(plane);
    }

    /// The armed fault plane, if any — HSM agents read it to pick their
    /// retry policy.
    pub fn armed_faults(&self) -> Option<Arc<FaultPlane>> {
        self.shared.faults.read().clone()
    }

    /// Whether a drive is fenced (hard-failed and withdrawn from service).
    pub fn is_fenced(&self, drive: DriveId) -> Result<bool, TapeError> {
        Ok(self.drive(drive)?.lock().fenced)
    }

    /// This library's identity.
    pub fn lib_id(&self) -> LibraryId {
        self.shared.lib_id
    }

    /// First global drive id owned by this library.
    pub fn drive_base(&self) -> u32 {
        self.shared.drive_base
    }

    /// First global tape id owned by this library.
    pub fn tape_base(&self) -> u32 {
        self.shared.tape_base
    }

    /// Does this library own `tape` (its id falls in our range)?
    pub fn owns_tape(&self, tape: TapeId) -> bool {
        tape.0 >= self.shared.tape_base
            && ((tape.0 - self.shared.tape_base) as usize) < self.shared.cartridges.len()
    }

    /// Does this library own `drive`?
    pub fn owns_drive(&self, drive: DriveId) -> bool {
        drive.0 >= self.shared.drive_base
            && ((drive.0 - self.shared.drive_base) as usize) < self.shared.drives.len()
    }

    /// Force the whole library offline (or back online) — the manual
    /// counterpart of a scheduled [`copra_faults::ScheduledFault::LibraryOffline`]
    /// window.
    pub fn set_offline(&self, offline: bool) {
        self.shared
            .forced_offline
            .store(offline, std::sync::atomic::Ordering::Relaxed);
        if !offline {
            self.shared
                .outage_noted
                .store(false, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Is the library offline at `now` (manual toggle or a scheduled
    /// outage window)? Pure query — does not count the injection.
    pub fn is_offline(&self, now: SimInstant) -> bool {
        self.shared
            .forced_offline
            .load(std::sync::atomic::Ordering::Relaxed)
            || self
                .armed_faults()
                .is_some_and(|p| p.library_offline_at(self.shared.lib_id.0, now))
    }

    /// Count the current outage if it hasn't been noted yet. Callers that
    /// *route around* a dead library (replica placement, recall cost
    /// ranking) observe the outage without ever issuing a rejected
    /// operation — this keeps `faults.library_outages` honest for them.
    pub fn note_outage(&self, now: SimInstant) {
        use std::sync::atomic::Ordering;
        if self.is_offline(now) && !self.shared.outage_noted.swap(true, Ordering::Relaxed) {
            if let Some(p) = self.armed_faults() {
                p.note_library_outage(self.shared.lib_id.0, now);
            }
        }
    }

    /// Gate a drive/robot operation on the library being online. The
    /// first rejected operation of an outage counts the injection; when
    /// the window closes the note re-arms for the next outage.
    fn check_online(&self, now: SimInstant) -> Result<(), TapeError> {
        use std::sync::atomic::Ordering;
        if self.is_offline(now) {
            if !self.shared.outage_noted.swap(true, Ordering::Relaxed) {
                if let Some(p) = self.armed_faults() {
                    p.note_library_outage(self.shared.lib_id.0, now);
                }
            }
            return Err(TapeError::LibraryOffline {
                library: self.shared.lib_id,
            });
        }
        self.shared.outage_noted.store(false, Ordering::Relaxed);
        Ok(())
    }

    /// Gate an operation on drive health: an already-fenced drive rejects
    /// it, and a drive whose scheduled hard-failure instant has passed is
    /// fenced here — volume freed so recovery can remount it elsewhere.
    fn check_drive_health(
        &self,
        st: &mut DriveState,
        drive: DriveId,
        now: SimInstant,
    ) -> Result<(), TapeError> {
        if st.fenced {
            return Err(TapeError::DriveFailed(drive));
        }
        let plane = self.armed_faults();
        if let Some(p) = plane {
            if p.drive_fails_by(drive.0, now) {
                st.fenced = true;
                st.head_bytes = 0;
                st.last_agent = None;
                if let Some(tape) = st.mounted.take() {
                    self.shared.mounted_in.lock().remove(&tape.0);
                }
                p.note_fence(drive.0, now);
                return Err(TapeError::DriveFailed(drive));
            }
        }
        Ok(())
    }

    /// Consult the plane for a transient I/O fault on `drive`; on a hit
    /// the latency spike is charged to the drive before the error returns.
    fn check_transient_io(
        &self,
        st: &mut DriveState,
        drive: DriveId,
        now: SimInstant,
    ) -> Result<(), TapeError> {
        let plane = self.armed_faults();
        if let Some(p) = plane {
            if let Some(spike) = p.take_transient_io(drive.0, now) {
                st.timeline.reserve(now, spike);
                return Err(TapeError::TransientIo(drive));
            }
        }
        Ok(())
    }

    pub fn timing(&self) -> &TapeTiming {
        &self.shared.timing
    }

    pub fn drive_count(&self) -> usize {
        self.shared.drives.len()
    }

    pub fn tape_count(&self) -> usize {
        self.shared.cartridges.len()
    }

    pub fn drives(&self) -> impl Iterator<Item = DriveId> {
        let base = self.shared.drive_base;
        (0..self.shared.drives.len() as u32).map(move |i| DriveId(base + i))
    }

    /// All tape ids this library owns, in id order.
    pub fn tapes(&self) -> impl Iterator<Item = TapeId> {
        let base = self.shared.tape_base;
        (0..self.shared.cartridges.len() as u32).map(move |i| TapeId(base + i))
    }

    fn drive(&self, id: DriveId) -> Result<&Mutex<DriveState>, TapeError> {
        id.0.checked_sub(self.shared.drive_base)
            .and_then(|i| self.shared.drives.get(i as usize))
            .ok_or(TapeError::NoSuchDrive(id))
    }

    fn cartridge(&self, id: TapeId) -> Result<&Mutex<Cartridge>, TapeError> {
        id.0.checked_sub(self.shared.tape_base)
            .and_then(|i| self.shared.cartridges.get(i as usize))
            .ok_or(TapeError::NoSuchTape(id))
    }

    /// Inspect a cartridge (reconcile walks records this way).
    pub fn with_cartridge<R>(
        &self,
        id: TapeId,
        f: impl FnOnce(&Cartridge) -> R,
    ) -> Result<R, TapeError> {
        Ok(f(&self.cartridge(id)?.lock()))
    }

    /// Which tape a drive holds.
    pub fn mounted_tape(&self, drive: DriveId) -> Result<Option<TapeId>, TapeError> {
        Ok(self.drive(drive)?.lock().mounted)
    }

    /// Which drive holds a tape, if any.
    pub fn drive_holding(&self, tape: TapeId) -> Option<DriveId> {
        self.shared.mounted_in.lock().get(&tape.0).copied()
    }

    /// Volumes with at least `len` bytes of space, emptiest-first — the
    /// simple scratch-pool allocator the HSM server uses.
    pub fn tapes_with_space(&self, len: DataSize) -> Vec<TapeId> {
        let mut v = self.tape_fill_levels(len);
        v.sort_unstable();
        v.into_iter().map(|(_, id)| id).collect()
    }

    /// Unsorted `(bytes_written, id)` fill levels of every volume with at
    /// least `len` bytes free — the substrate a fleet merges across
    /// libraries for a globally emptiest-first allocation order.
    pub fn tape_fill_levels(&self, len: DataSize) -> Vec<(u64, TapeId)> {
        let cap = self.shared.timing.capacity.as_bytes();
        self.shared
            .cartridges
            .iter()
            .map(|c| {
                let c = c.lock();
                (c.bytes_written(), c.id())
            })
            .filter(|(written, _)| written + len.as_bytes() <= cap)
            .collect()
    }

    /// Mount `tape` in `drive` (dismounting whatever is there). No-op if
    /// already mounted in that drive. Returns the completion instant.
    pub fn mount(
        &self,
        drive: DriveId,
        tape: TapeId,
        ready: SimInstant,
    ) -> Result<SimInstant, TapeError> {
        let _ = self.cartridge(tape)?; // validate id
        self.check_online(ready)?;
        let mut st = self.drive(drive)?.lock();
        self.check_drive_health(&mut st, drive, ready)?;
        if st.mounted == Some(tape) {
            return Ok(ready);
        }
        {
            let mounted_in = self.shared.mounted_in.lock();
            if let Some(holder) = mounted_in.get(&tape.0) {
                return Err(TapeError::TapeInUse {
                    tape,
                    drive: *holder,
                });
            }
        }
        let t = &self.shared.timing;
        let m = &self.shared.metrics;
        let mut cursor = ready;
        // Dismount current volume: rewind + unload on the drive, robot put-away.
        if let Some(old) = st.mounted {
            let rewind = t.rewind_time(DataSize::from_bytes(st.head_bytes));
            let r = st.timeline.reserve(cursor, rewind + t.unload);
            cursor = r.end;
            st.stats.rewinds += u64::from(!rewind.is_zero());
            st.stats.dismounts += 1;
            m.rewinds.add(u64::from(!rewind.is_zero()));
            m.dismounts.inc();
            let r = self.shared.robot.reserve(cursor, t.robot_move);
            cursor = r.end;
            self.shared.mounted_in.lock().remove(&old.0);
            self.shared.obs.event(
                cursor,
                EventKind::TapeDismount {
                    drive: drive.0,
                    tape: old.to_string(),
                },
            );
        }
        // Robot fetches the new volume (a scripted jam stalls the fetch).
        let jam = self
            .armed_faults()
            .and_then(|p| p.take_robot_jam(cursor))
            .unwrap_or(SimDuration::ZERO);
        let r = self.shared.robot.reserve(cursor, t.robot_move + jam);
        cursor = r.end;
        // Drive loads, threads and verifies the label.
        let r = st.timeline.reserve(cursor, t.mount + t.label_verify);
        cursor = r.end;
        st.mounted = Some(tape);
        st.head_bytes = 0;
        st.last_agent = None;
        st.stats.mounts += 1;
        st.stats.label_verifies += 1;
        m.mounts.inc();
        m.label_verifies.inc();
        self.shared.mounted_in.lock().insert(tape.0, drive);
        self.shared.obs.event(
            cursor,
            EventKind::TapeMount {
                drive: drive.0,
                tape: tape.to_string(),
            },
        );
        Ok(cursor)
    }

    /// Dismount whatever the drive holds (rewind + unload + robot).
    pub fn dismount(&self, drive: DriveId, ready: SimInstant) -> Result<SimInstant, TapeError> {
        self.check_online(ready)?;
        let mut st = self.drive(drive)?.lock();
        self.check_drive_health(&mut st, drive, ready)?;
        let Some(old) = st.mounted else {
            return Ok(ready);
        };
        let t = &self.shared.timing;
        let m = &self.shared.metrics;
        let rewind = t.rewind_time(DataSize::from_bytes(st.head_bytes));
        let r = st.timeline.reserve(ready, rewind + t.unload);
        st.stats.rewinds += u64::from(!rewind.is_zero());
        st.stats.dismounts += 1;
        m.rewinds.add(u64::from(!rewind.is_zero()));
        m.dismounts.inc();
        let r2 = self.shared.robot.reserve(r.end, t.robot_move);
        st.mounted = None;
        st.head_bytes = 0;
        st.last_agent = None;
        self.shared.mounted_in.lock().remove(&old.0);
        self.shared.obs.event(
            r2.end,
            EventKind::TapeDismount {
                drive: drive.0,
                tape: old.to_string(),
            },
        );
        Ok(r2.end)
    }

    /// Mount `tape` somewhere convenient: the drive already holding it, an
    /// idle empty drive, else the drive that frees up soonest. Returns
    /// (drive, mount completion).
    pub fn ensure_mounted(
        &self,
        tape: TapeId,
        ready: SimInstant,
    ) -> Result<(DriveId, SimInstant), TapeError> {
        self.check_online(ready)?;
        if let Some(d) = self.drive_holding(tape) {
            // The holder may carry a hard-failure scheduled before `ready`;
            // fence it here instead of bouncing every caller off a dead
            // mount, and fall through to pick a healthy drive.
            let mut st = self.drive(d)?.lock();
            if self.check_drive_health(&mut st, d, ready).is_ok() {
                return Ok((d, ready));
            }
        }
        // Prefer an empty drive; otherwise evict from the one free soonest.
        // Fenced drives (and drives due to fail by `ready`) are skipped.
        let mut candidates: Vec<(bool, SimInstant, u32)> = Vec::new();
        for (i, d) in self.shared.drives.iter().enumerate() {
            let id = DriveId(self.shared.drive_base + i as u32);
            let mut st = d.lock();
            if self.check_drive_health(&mut st, id, ready).is_err() {
                continue;
            }
            candidates.push((st.mounted.is_some(), st.timeline.next_free(), id.0));
        }
        candidates.sort_unstable(); // occupied=false first, then earliest free, then id
        let Some(&(_, _, first)) = candidates.first() else {
            return Err(TapeError::NoHealthyDrive);
        };
        let drive = DriveId(first);
        let end = self.mount(drive, tape, ready)?;
        Ok((drive, end))
    }

    /// Charge the §6.2 hand-off penalty if `agent` differs from the last
    /// agent that used this drive's tape: the tape rewinds and the label is
    /// re-verified even though it never physically dismounts.
    fn agent_handoff(
        &self,
        st: &mut DriveState,
        drive: DriveId,
        agent: u32,
        ready: SimInstant,
    ) -> SimInstant {
        let timing = &self.shared.timing;
        match st.last_agent {
            Some(a) if a == agent => ready,
            None => {
                st.last_agent = Some(agent);
                ready
            }
            Some(_) => {
                let rewind = timing.rewind_time(DataSize::from_bytes(st.head_bytes));
                let r = st.timeline.reserve(ready, rewind + timing.label_verify);
                st.head_bytes = 0;
                st.last_agent = Some(agent);
                st.stats.handoffs += 1;
                st.stats.rewinds += u64::from(!rewind.is_zero());
                st.stats.label_verifies += 1;
                let m = &self.shared.metrics;
                m.handoffs.inc();
                m.rewinds.add(u64::from(!rewind.is_zero()));
                m.label_verifies.inc();
                m.handoff_penalty_ns
                    .record(r.end.saturating_since(ready).as_nanos());
                if let Some(tape) = st.mounted {
                    self.shared.obs.event(
                        r.end,
                        EventKind::AgentHandoff {
                            drive: drive.0,
                            tape: tape.to_string(),
                        },
                    );
                }
                r.end
            }
        }
    }

    /// Write an object at end-of-data of the tape in `drive`, as storage
    /// agent `agent`. One object = one transaction (backhitch charged).
    pub fn write_object(
        &self,
        drive: DriveId,
        agent: u32,
        objid: u64,
        content: Content,
        ready: SimInstant,
    ) -> Result<(TapeAddress, SimInstant), TapeError> {
        let len = content.len();
        self.check_online(ready)?;
        let mut st = self.drive(drive)?.lock();
        self.check_drive_health(&mut st, drive, ready)?;
        let tape = st.mounted.ok_or(TapeError::NotMounted(drive))?;
        self.check_transient_io(&mut st, drive, ready)?;
        let t = &self.shared.timing;
        let cursor = self.agent_handoff(&mut st, drive, agent, ready);

        let mut cart = self.cartridge(tape)?.lock();
        let eod = cart.bytes_written();
        let seq = cart
            .append(objid, content)
            .ok_or(TapeError::TapeFull(tape))?;
        // Position to EOD if not already there, then backhitch + stream.
        let dist = eod.abs_diff(st.head_bytes);
        let locate = t.locate_time(DataSize::from_bytes(dist));
        let r = st.timeline.transfer_with_overhead(
            cursor,
            DataSize::from_bytes(len),
            locate + t.backhitch,
        );
        st.head_bytes = eod + len;
        st.stats.locates += u64::from(dist > 0);
        st.stats.backhitches += 1;
        st.stats.bytes_written += len;
        let m = &self.shared.metrics;
        m.locates.add(u64::from(dist > 0));
        m.backhitches.inc();
        m.bytes_written.add(len);
        m.backhitch_penalty_ns.record(t.backhitch.as_nanos());
        if let Some((count, penalty)) = (drive.0)
            .checked_sub(self.shared.drive_base)
            .and_then(|i| m.per_drive.get(i as usize))
        {
            count.inc();
            penalty.add(t.backhitch.as_nanos());
        }
        Ok((TapeAddress { tape, seq }, r.end))
    }

    /// Read the object at `addr` through `drive` as storage agent `agent`.
    pub fn read_object(
        &self,
        drive: DriveId,
        agent: u32,
        addr: TapeAddress,
        ready: SimInstant,
    ) -> Result<(Content, SimInstant), TapeError> {
        self.check_online(ready)?;
        let mut st = self.drive(drive)?.lock();
        self.check_drive_health(&mut st, drive, ready)?;
        let mounted = st.mounted;
        if mounted != Some(addr.tape) {
            return Err(TapeError::WrongTape {
                drive,
                mounted,
                wanted: addr.tape,
            });
        }
        self.check_transient_io(&mut st, drive, ready)?;
        let t = &self.shared.timing;
        let cursor = self.agent_handoff(&mut st, drive, agent, ready);

        let cart = self.cartridge(addr.tape)?.lock();
        let rec = cart.record(addr.seq).ok_or(TapeError::NoSuchRecord(addr))?;
        let injected = self
            .armed_faults()
            .is_some_and(|p| p.take_media_error(addr.tape.0, addr.seq, cursor));
        if rec.damaged || injected {
            return Err(TapeError::MediaError(addr));
        }
        let content = rec.content.clone().ok_or(TapeError::ObjectDeleted(addr))?;
        let dist = rec.start.abs_diff(st.head_bytes);
        let locate = t.locate_time(DataSize::from_bytes(dist));
        let r = st
            .timeline
            .transfer_with_overhead(cursor, DataSize::from_bytes(rec.len), locate);
        st.head_bytes = rec.start + rec.len;
        st.stats.locates += u64::from(dist > 0);
        st.stats.bytes_read += rec.len;
        let m = &self.shared.metrics;
        m.locates.add(u64::from(dist > 0));
        m.bytes_read.add(rec.len);
        Ok((content, r.end))
    }

    /// Read `len` bytes starting at `offset` within the record at `addr`
    /// (used for members of aggregated containers, §6.1): the drive locates
    /// to the member's position inside the record and streams only the
    /// member's bytes.
    pub fn read_object_range(
        &self,
        drive: DriveId,
        agent: u32,
        addr: TapeAddress,
        offset: u64,
        len: u64,
        ready: SimInstant,
    ) -> Result<(Content, SimInstant), TapeError> {
        self.check_online(ready)?;
        let mut st = self.drive(drive)?.lock();
        self.check_drive_health(&mut st, drive, ready)?;
        let mounted = st.mounted;
        if mounted != Some(addr.tape) {
            return Err(TapeError::WrongTape {
                drive,
                mounted,
                wanted: addr.tape,
            });
        }
        self.check_transient_io(&mut st, drive, ready)?;
        let t = &self.shared.timing;
        let cursor = self.agent_handoff(&mut st, drive, agent, ready);

        let cart = self.cartridge(addr.tape)?.lock();
        let rec = cart.record(addr.seq).ok_or(TapeError::NoSuchRecord(addr))?;
        let injected = self
            .armed_faults()
            .is_some_and(|p| p.take_media_error(addr.tape.0, addr.seq, cursor));
        if rec.damaged || injected {
            return Err(TapeError::MediaError(addr));
        }
        let content = rec.content.as_ref().ok_or(TapeError::ObjectDeleted(addr))?;
        if offset + len > rec.len {
            return Err(TapeError::NoSuchRecord(addr));
        }
        let slice = content.slice(offset, len);
        let target = rec.start + offset;
        let dist = target.abs_diff(st.head_bytes);
        let locate = t.locate_time(DataSize::from_bytes(dist));
        let r = st
            .timeline
            .transfer_with_overhead(cursor, DataSize::from_bytes(len), locate);
        st.head_bytes = target + len;
        st.stats.locates += u64::from(dist > 0);
        st.stats.bytes_read += len;
        let m = &self.shared.metrics;
        m.locates.add(u64::from(dist > 0));
        m.bytes_read.add(len);
        Ok((slice, r.end))
    }

    /// Delete an object's record (a TSM database operation — no drive time;
    /// the span stays occupied until volume reclamation).
    pub fn delete_object(&self, addr: TapeAddress) -> Result<(), TapeError> {
        let mut cart = self.cartridge(addr.tape)?.lock();
        match cart.record(addr.seq) {
            None => Err(TapeError::NoSuchRecord(addr)),
            Some(r) if r.is_deleted() => Err(TapeError::ObjectDeleted(addr)),
            Some(_) => {
                cart.delete(addr.seq);
                Ok(())
            }
        }
    }

    /// Failure injection / media aging: mark a record's span unreadable.
    pub fn damage_record(&self, addr: TapeAddress) -> Result<(), TapeError> {
        let mut cart = self.cartridge(addr.tape)?.lock();
        if cart.damage(addr.seq) {
            Ok(())
        } else {
            Err(TapeError::NoSuchRecord(addr))
        }
    }

    /// Volumes whose dead-space fraction is at least `threshold` —
    /// reclamation candidates.
    pub fn reclaimable_volumes(&self, threshold: f64) -> Vec<TapeId> {
        self.shared
            .cartridges
            .iter()
            .filter_map(|c| {
                let c = c.lock();
                (c.bytes_written() > 0 && c.reclaimable_fraction() >= threshold).then(|| c.id())
            })
            .collect()
    }

    /// Wipe a fully-dead volume back to scratch (must not be mounted and
    /// must hold no live objects).
    pub fn erase_volume(&self, tape: TapeId) -> Result<(), TapeError> {
        if let Some(drive) = self.drive_holding(tape) {
            return Err(TapeError::TapeInUse { tape, drive });
        }
        let mut cart = self.cartridge(tape)?.lock();
        if cart.erase() {
            Ok(())
        } else {
            Err(TapeError::VolumeNotEmpty(tape))
        }
    }

    /// All live objects across the library: (address, objid, len), in
    /// (tape, seq) order — the reconcile agent's view of tape truth.
    pub fn live_objects(&self) -> Vec<(TapeAddress, u64, u64)> {
        let mut out = Vec::new();
        for c in &self.shared.cartridges {
            let c = c.lock();
            for r in c.records() {
                if !r.is_deleted() {
                    out.push((
                        TapeAddress {
                            tape: c.id(),
                            seq: r.seq,
                        },
                        r.objid,
                        r.len,
                    ));
                }
            }
        }
        out
    }

    /// Estimated time until the record at `addr` could start streaming:
    /// already-mounted volumes cost queue wait + locate distance, unmounted
    /// ones a full robot fetch + mount + label verify + locate from BOT.
    /// `None` when the library is offline or the record does not exist —
    /// recall routing treats that replica as unavailable.
    pub fn recall_cost_estimate(&self, addr: TapeAddress, now: SimInstant) -> Option<SimDuration> {
        if self.is_offline(now) {
            return None;
        }
        let start = {
            let cart = self.cartridge(addr.tape).ok()?;
            let cart = cart.lock();
            let rec = cart.record(addr.seq)?;
            if rec.is_deleted() || rec.damaged {
                return None;
            }
            rec.start
        };
        let t = &self.shared.timing;
        let mount_cost = t.robot_move + t.mount + t.label_verify;
        Some(match self.drive_holding(addr.tape) {
            Some(d) => {
                let st = self.drive(d).ok()?.lock();
                if st.fenced {
                    mount_cost + t.locate_time(DataSize::from_bytes(start))
                } else {
                    let wait = st.timeline.next_free().saturating_since(now);
                    wait + t.locate_time(DataSize::from_bytes(start.abs_diff(st.head_bytes)))
                }
            }
            None => mount_cost + t.locate_time(DataSize::from_bytes(start)),
        })
    }

    /// Mechanical + time statistics.
    pub fn stats(&self) -> LibraryStats {
        let mut per_drive = Vec::with_capacity(self.shared.drives.len());
        let mut totals = DriveStats::default();
        let mut drain = SimInstant::EPOCH;
        let mut busy = SimDuration::ZERO;
        for d in &self.shared.drives {
            let st = d.lock();
            per_drive.push(st.stats);
            totals.mounts += st.stats.mounts;
            totals.dismounts += st.stats.dismounts;
            totals.label_verifies += st.stats.label_verifies;
            totals.rewinds += st.stats.rewinds;
            totals.locates += st.stats.locates;
            totals.backhitches += st.stats.backhitches;
            totals.bytes_written += st.stats.bytes_written;
            totals.bytes_read += st.stats.bytes_read;
            totals.handoffs += st.stats.handoffs;
            let tl = st.timeline.stats();
            drain = drain.max(tl.next_free);
            busy += tl.busy;
        }
        LibraryStats {
            per_drive,
            totals,
            drain,
            busy,
        }
    }

    /// Per-drive timeline statistics (busy time, ops, bytes, next free),
    /// indexed by drive id — the substrate for utilization reporting.
    pub fn drive_timeline_stats(&self) -> Vec<TimelineStats> {
        self.shared
            .drives
            .iter()
            .map(|d| d.lock().timeline.stats())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copra_simtime::Bandwidth;

    fn lib() -> TapeLibrary {
        TapeLibrary::new(2, 4, TapeTiming::lto4())
    }

    #[test]
    fn mount_charges_robot_and_drive() {
        let l = lib();
        let end = l.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        // robot 8 + mount 15 + verify 3 = 26 s
        assert_eq!(end, SimInstant::from_secs(26));
        assert_eq!(l.mounted_tape(DriveId(0)).unwrap(), Some(TapeId(0)));
        assert_eq!(l.drive_holding(TapeId(0)), Some(DriveId(0)));
        // remount of same tape is free
        assert_eq!(l.mount(DriveId(0), TapeId(0), end).unwrap(), end);
    }

    #[test]
    fn tape_cannot_be_in_two_drives() {
        let l = lib();
        l.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        assert_eq!(
            l.mount(DriveId(1), TapeId(0), SimInstant::EPOCH),
            Err(TapeError::TapeInUse {
                tape: TapeId(0),
                drive: DriveId(0)
            })
        );
    }

    #[test]
    fn write_then_read_roundtrip() {
        let l = lib();
        let t0 = l.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        let content = Content::synthetic(7, 10 << 20);
        let (addr, t1) = l
            .write_object(DriveId(0), 1, 42, content.clone(), t0)
            .unwrap();
        assert_eq!(
            addr,
            TapeAddress {
                tape: TapeId(0),
                seq: 0
            }
        );
        assert!(t1 > t0);
        let (back, t2) = l.read_object(DriveId(0), 1, addr, t1).unwrap();
        assert!(back.eq_content(&content));
        assert!(t2 > t1);
    }

    #[test]
    fn sequential_read_avoids_locates_but_backward_seeks() {
        let l = TapeLibrary::new(1, 1, TapeTiming::lto4());
        let t0 = l.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        let mut cursor = t0;
        let mut addrs = Vec::new();
        for i in 0..4u64 {
            let (a, end) = l
                .write_object(DriveId(0), 1, i, Content::synthetic(i, 50 << 20), cursor)
                .unwrap();
            addrs.push(a);
            cursor = end;
        }
        let locates_after_write = l.stats().totals.locates;
        // Head is at EOD. Read in order: first read locates back to 0, then
        // the rest stream sequentially with no locate.
        for a in &addrs {
            let (_, end) = l.read_object(DriveId(0), 1, *a, cursor).unwrap();
            cursor = end;
        }
        let s = l.stats();
        assert_eq!(s.totals.locates - locates_after_write, 1);
        // Reading backwards now seeks every time.
        for a in addrs.iter().rev() {
            let (_, end) = l.read_object(DriveId(0), 1, *a, cursor).unwrap();
            cursor = end;
        }
        assert!(l.stats().totals.locates - s.totals.locates >= 3);
    }

    #[test]
    fn agent_handoff_costs_rewind_and_verify() {
        let l = TapeLibrary::new(1, 1, TapeTiming::lto4());
        let t0 = l.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        let (a0, t1) = l
            .write_object(DriveId(0), 1, 1, Content::synthetic(1, 100 << 20), t0)
            .unwrap();
        // same agent reads: no handoff
        let (_, t2) = l.read_object(DriveId(0), 1, a0, t1).unwrap();
        assert_eq!(l.stats().totals.handoffs, 0);
        // different agent: handoff penalty
        let (_, t3) = l.read_object(DriveId(0), 2, a0, t2).unwrap();
        let s = l.stats();
        assert_eq!(s.totals.handoffs, 1);
        assert_eq!(s.totals.label_verifies, 2); // mount + handoff
        assert!(t3 - t2 > t2 - t1, "handoff read should be slower");
    }

    #[test]
    fn tape_full_reported() {
        let timing = TapeTiming {
            capacity: DataSize::mb(1),
            ..TapeTiming::lto4()
        };
        let l = TapeLibrary::new(1, 1, timing);
        let t0 = l.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        let r = l.write_object(DriveId(0), 1, 1, Content::synthetic(1, 2 << 20), t0);
        assert_eq!(r.unwrap_err(), TapeError::TapeFull(TapeId(0)));
    }

    #[test]
    fn delete_and_reconcile_view() {
        let l = lib();
        let t0 = l.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        let (a0, t1) = l
            .write_object(DriveId(0), 1, 10, Content::synthetic(1, 1000), t0)
            .unwrap();
        let (a1, _) = l
            .write_object(DriveId(0), 1, 11, Content::synthetic(2, 1000), t1)
            .unwrap();
        l.delete_object(a0).unwrap();
        assert_eq!(l.delete_object(a0), Err(TapeError::ObjectDeleted(a0)));
        let live = l.live_objects();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].0, a1);
        assert_eq!(live[0].1, 11);
        assert!(matches!(
            l.read_object(DriveId(0), 1, a0, t1),
            Err(TapeError::ObjectDeleted(_))
        ));
    }

    #[test]
    fn dismount_then_remount_elsewhere() {
        let l = lib();
        let t0 = l.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        let t1 = l.dismount(DriveId(0), t0).unwrap();
        assert!(t1 > t0);
        assert_eq!(l.mounted_tape(DriveId(0)).unwrap(), None);
        let t2 = l.mount(DriveId(1), TapeId(0), t1).unwrap();
        assert!(t2 > t1);
        assert_eq!(l.drive_holding(TapeId(0)), Some(DriveId(1)));
    }

    #[test]
    fn mount_evicts_previous_volume() {
        let l = lib();
        let t0 = l.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        let t1 = l.mount(DriveId(0), TapeId(1), t0).unwrap();
        // eviction costs unload + two robot moves + mount + verify
        let min_expected = t0
            + TapeTiming::lto4().unload
            + TapeTiming::lto4().robot_move * 2
            + TapeTiming::lto4().mount
            + TapeTiming::lto4().label_verify;
        assert_eq!(t1, min_expected);
        assert_eq!(l.drive_holding(TapeId(0)), None);
        assert_eq!(l.mounted_tape(DriveId(0)).unwrap(), Some(TapeId(1)));
    }

    #[test]
    fn ensure_mounted_prefers_holder_then_empty() {
        let l = lib();
        let (d0, _) = l.ensure_mounted(TapeId(0), SimInstant::EPOCH).unwrap();
        let (d0_again, t) = l
            .ensure_mounted(TapeId(0), SimInstant::from_secs(100))
            .unwrap();
        assert_eq!(d0, d0_again);
        assert_eq!(t, SimInstant::from_secs(100)); // already mounted: free
        let (d1, _) = l.ensure_mounted(TapeId(1), SimInstant::EPOCH).unwrap();
        assert_ne!(d0, d1, "second tape should go to the empty drive");
    }

    #[test]
    fn tape_error_display_messages() {
        let addr = TapeAddress {
            tape: TapeId(3),
            seq: 7,
        };
        let cases: Vec<(TapeError, &str)> = vec![
            (TapeError::NoSuchDrive(DriveId(1)), "no such drive: drive1"),
            (TapeError::NoSuchTape(TapeId(2)), "no such tape: VOL00002"),
            (
                TapeError::NotMounted(DriveId(0)),
                "no tape mounted in drive0",
            ),
            (
                TapeError::WrongTape {
                    drive: DriveId(1),
                    mounted: Some(TapeId(2)),
                    wanted: TapeId(3),
                },
                "drive1 has Some(TapeId(2)) mounted, wanted VOL00003",
            ),
            (
                TapeError::TapeInUse {
                    tape: TapeId(1),
                    drive: DriveId(0),
                },
                "VOL00001 is mounted in drive0",
            ),
            (TapeError::TapeFull(TapeId(4)), "tape full: VOL00004"),
            (TapeError::NoSuchRecord(addr), "no record 7 on VOL00003"),
            (
                TapeError::ObjectDeleted(addr),
                "record 7 on VOL00003 was deleted",
            ),
            (
                TapeError::MediaError(addr),
                "media error reading record 7 on VOL00003",
            ),
            (
                TapeError::VolumeNotEmpty(TapeId(9)),
                "volume VOL00009 still holds live objects",
            ),
            (
                TapeError::DriveFailed(DriveId(5)),
                "drive5 hard-failed and is fenced",
            ),
            (
                TapeError::TransientIo(DriveId(6)),
                "transient I/O error on drive6",
            ),
            (TapeError::NoHealthyDrive, "no healthy drive in the library"),
            (
                TapeError::LibraryOffline {
                    library: LibraryId(2),
                },
                "library lib2 is offline (all drives and robot fenced)",
            ),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }

    #[test]
    fn offline_library_rejects_reads_until_it_returns() {
        use copra_faults::FaultPlan;
        let l = lib();
        let t0 = l.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        let content = Content::synthetic(8, 1 << 20);
        let (addr, t1) = l
            .write_object(DriveId(0), 1, 1, content.clone(), t0)
            .unwrap();
        l.arm_faults(
            FaultPlan::new(3)
                .offline_library_until(0, SimInstant::from_secs(100), SimInstant::from_secs(500))
                .arm(l.obs().clone()),
        );
        // Before the window the read-path is untouched.
        let (_, t2) = l.read_object(DriveId(0), 1, addr, t1).unwrap();
        // Inside the window every drive/robot operation is rejected.
        let off = SimInstant::from_secs(200);
        let want = TapeError::LibraryOffline {
            library: LibraryId(0),
        };
        assert_eq!(l.read_object(DriveId(0), 1, addr, off).unwrap_err(), want);
        assert_eq!(
            l.read_object_range(DriveId(0), 1, addr, 0, 100, off)
                .unwrap_err(),
            want
        );
        assert_eq!(l.ensure_mounted(TapeId(0), off).unwrap_err(), want);
        assert_eq!(
            l.write_object(DriveId(0), 1, 2, Content::synthetic(9, 100), off)
                .unwrap_err(),
            want
        );
        assert!(l.is_offline(off));
        assert!(l.recall_cost_estimate(addr, off).is_none());
        // After the window the mount survived and the data reads clean.
        let back = SimInstant::from_secs(600);
        assert!(!l.is_offline(back));
        let (got, _) = l.read_object(DriveId(0), 1, addr, back.max(t2)).unwrap();
        assert!(got.eq_content(&content));
        // One outage observed, counted once despite many rejections.
        assert_eq!(l.obs().snapshot().counter("faults.library_outages"), 1);
    }

    #[test]
    fn identity_bases_shift_the_id_namespace() {
        let l = TapeLibrary::with_identity(
            LibraryId(1),
            4,
            32,
            2,
            4,
            TapeTiming::lto4(),
            Registry::new(),
        );
        assert_eq!(l.lib_id(), LibraryId(1));
        assert_eq!(l.drives().collect::<Vec<_>>(), vec![DriveId(4), DriveId(5)]);
        assert_eq!(l.tapes().next(), Some(TapeId(32)));
        assert!(l.owns_tape(TapeId(35)) && !l.owns_tape(TapeId(36)));
        assert!(l.owns_drive(DriveId(5)) && !l.owns_drive(DriveId(3)));
        // Out-of-range ids are rejected, in-range ones work end to end.
        assert_eq!(
            l.mount(DriveId(0), TapeId(32), SimInstant::EPOCH),
            Err(TapeError::NoSuchDrive(DriveId(0)))
        );
        let t0 = l.mount(DriveId(4), TapeId(32), SimInstant::EPOCH).unwrap();
        let content = Content::synthetic(1, 1 << 20);
        let (addr, t1) = l
            .write_object(DriveId(4), 1, 7, content.clone(), t0)
            .unwrap();
        assert_eq!(addr.tape, TapeId(32));
        assert_eq!(l.drive_holding(TapeId(32)), Some(DriveId(4)));
        let (back, _) = l.read_object(DriveId(4), 1, addr, t1).unwrap();
        assert!(back.eq_content(&content));
        assert_eq!(l.tapes_with_space(DataSize::mb(1)).len(), 4);
        let (d, _) = l.ensure_mounted(TapeId(33), t1).unwrap();
        assert_eq!(d, DriveId(5), "empty drive picked under global ids");
    }

    #[test]
    fn manual_offline_toggle_round_trips() {
        let l = lib();
        let t0 = l.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        l.set_offline(true);
        assert!(matches!(
            l.ensure_mounted(TapeId(0), t0),
            Err(TapeError::LibraryOffline { .. })
        ));
        l.set_offline(false);
        assert_eq!(l.ensure_mounted(TapeId(0), t0).unwrap(), (DriveId(0), t0));
    }

    #[test]
    fn damaged_and_deleted_records_fail_reads_precisely() {
        let l = lib();
        let t0 = l.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        let (a0, t1) = l
            .write_object(DriveId(0), 1, 10, Content::synthetic(1, 4096), t0)
            .unwrap();
        let (a1, t2) = l
            .write_object(DriveId(0), 1, 11, Content::synthetic(2, 4096), t1)
            .unwrap();
        l.damage_record(a0).unwrap();
        assert_eq!(
            l.read_object(DriveId(0), 1, a0, t2).unwrap_err(),
            TapeError::MediaError(a0)
        );
        assert_eq!(
            l.read_object_range(DriveId(0), 1, a0, 0, 100, t2)
                .unwrap_err(),
            TapeError::MediaError(a0)
        );
        // The neighbor record is untouched.
        let (_, t3) = l.read_object(DriveId(0), 1, a1, t2).unwrap();
        l.delete_object(a1).unwrap();
        assert_eq!(
            l.read_object(DriveId(0), 1, a1, t3).unwrap_err(),
            TapeError::ObjectDeleted(a1)
        );
        assert_eq!(
            l.read_object_range(DriveId(0), 1, a1, 0, 100, t3)
                .unwrap_err(),
            TapeError::ObjectDeleted(a1)
        );
    }

    #[test]
    fn scheduled_drive_failure_fences_and_frees_the_volume() {
        use copra_faults::FaultPlan;
        let l = lib();
        l.arm_faults(
            FaultPlan::new(11)
                .fail_drive(0, SimInstant::from_secs(100))
                .arm(l.obs().clone()),
        );
        let t0 = l.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        let (addr, _) = l
            .write_object(DriveId(0), 1, 1, Content::synthetic(1, 1 << 20), t0)
            .unwrap();
        let late = SimInstant::from_secs(200);
        assert_eq!(
            l.read_object(DriveId(0), 1, addr, late).unwrap_err(),
            TapeError::DriveFailed(DriveId(0))
        );
        assert!(l.is_fenced(DriveId(0)).unwrap());
        assert_eq!(l.drive_holding(TapeId(0)), None, "volume freed at fence");
        // Recovery path: the tape remounts on the healthy drive and the
        // object is readable again.
        let (d, t) = l.ensure_mounted(TapeId(0), late).unwrap();
        assert_eq!(d, DriveId(1));
        let (back, _) = l.read_object(d, 1, addr, t).unwrap();
        assert!(back.eq_content(&Content::synthetic(1, 1 << 20)));
        let snap = l.obs().snapshot();
        assert_eq!(snap.counter("faults.fences"), 1);
        assert_eq!(snap.counter("faults.drive_failures"), 1);
    }

    #[test]
    fn all_drives_fenced_is_no_healthy_drive() {
        use copra_faults::FaultPlan;
        let l = lib();
        l.arm_faults(
            FaultPlan::new(11)
                .fail_drive(0, SimInstant::EPOCH)
                .fail_drive(1, SimInstant::EPOCH)
                .arm(l.obs().clone()),
        );
        assert_eq!(
            l.ensure_mounted(TapeId(0), SimInstant::from_secs(1)),
            Err(TapeError::NoHealthyDrive)
        );
    }

    #[test]
    fn robot_jam_delays_exactly_one_mount() {
        use copra_faults::FaultPlan;
        let l = lib();
        l.arm_faults(
            FaultPlan::new(11)
                .jam_robot(SimInstant::EPOCH, SimDuration::from_secs(40))
                .arm(l.obs().clone()),
        );
        let end = l.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        // robot (8 + 40 jam) + mount 15 + verify 3
        assert_eq!(end, SimInstant::from_secs(66));
        // The jam was consumed: the next mount runs at mechanical speed.
        let end2 = l.mount(DriveId(1), TapeId(1), end).unwrap();
        assert_eq!(end2, end + SimDuration::from_secs(26));
    }

    #[test]
    fn transient_io_errors_spike_latency_and_are_retryable() {
        use copra_faults::FaultPlan;
        let l = TapeLibrary::new(1, 1, TapeTiming::lto4());
        let t0 = l.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        l.arm_faults(
            FaultPlan::new(5)
                .transient_io(1.0, SimDuration::from_secs(5))
                .arm(l.obs().clone()),
        );
        let content = Content::synthetic(9, 1 << 20);
        assert_eq!(
            l.write_object(DriveId(0), 1, 1, content.clone(), t0)
                .unwrap_err(),
            TapeError::TransientIo(DriveId(0))
        );
        // Re-arm with a clean plan (the retry path normally just tries
        // again later); the spike stays charged to the drive timeline.
        l.arm_faults(FaultPlan::new(5).arm(l.obs().clone()));
        let (_, end) = l.write_object(DriveId(0), 1, 1, content, t0).unwrap();
        assert!(
            end >= t0 + SimDuration::from_secs(5),
            "spike occupies drive"
        );
    }

    #[test]
    fn injected_media_errors_clear_after_their_hits() {
        use copra_faults::FaultPlan;
        let l = TapeLibrary::new(1, 1, TapeTiming::lto4());
        let t0 = l.mount(DriveId(0), TapeId(0), SimInstant::EPOCH).unwrap();
        let content = Content::synthetic(3, 1 << 20);
        let (addr, t1) = l
            .write_object(DriveId(0), 1, 1, content.clone(), t0)
            .unwrap();
        l.arm_faults(
            FaultPlan::new(4)
                .media_error(addr.tape.0, addr.seq, 2)
                .arm(l.obs().clone()),
        );
        assert_eq!(
            l.read_object(DriveId(0), 1, addr, t1).unwrap_err(),
            TapeError::MediaError(addr)
        );
        assert_eq!(
            l.read_object(DriveId(0), 1, addr, t1).unwrap_err(),
            TapeError::MediaError(addr)
        );
        // Hits exhausted: the soft error clears and the data is intact.
        let (back, _) = l.read_object(DriveId(0), 1, addr, t1).unwrap();
        assert!(back.eq_content(&content));
        assert_eq!(l.obs().snapshot().counter("faults.media_errors"), 2);
    }

    #[test]
    fn tapes_with_space_sorted_emptiest_first() {
        let timing = TapeTiming::frictionless(Bandwidth::mb_per_sec(100), DataSize::mb(10));
        let l = TapeLibrary::new(1, 3, timing);
        let t0 = l.mount(DriveId(0), TapeId(1), SimInstant::EPOCH).unwrap();
        l.write_object(DriveId(0), 1, 1, Content::synthetic(1, 5 << 20), t0)
            .unwrap();
        let v = l.tapes_with_space(DataSize::mb(1));
        assert_eq!(v[0], TapeId(0).min(TapeId(2)).min(TapeId(0)));
        assert!(v.contains(&TapeId(1)));
        // nothing fits 20 MB
        assert!(l.tapes_with_space(DataSize::mb(20)).is_empty());
    }
}
