//! The shared metric registry: named counters/gauges/histograms plus the
//! event ring, handed around by `Arc`.

use copra_simtime::SimInstant;
use copra_trace::{SpanContext, Tracer};
use parking_lot::RwLock;
use rustc_hash::FxHashMap;
use std::sync::Arc;

use crate::events::{EventKind, EventRing};
use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::MetricsSnapshot;

/// Registry of named metrics and the event trace.
///
/// Lookup (`counter(name)` etc.) takes a read lock and is expected to be
/// done once per component, with the returned `Arc` handle cached; the
/// handles themselves are lock-free (counters/histograms) or
/// short-mutex (gauge sample ring). The registry itself is shared by
/// `Arc<Registry>` through constructors.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<FxHashMap<String, Arc<Counter>>>,
    gauges: RwLock<FxHashMap<String, Arc<Gauge>>>,
    histograms: RwLock<FxHashMap<String, Arc<Histogram>>>,
    events: EventRing,
    /// Span tracer; disabled by default, armed post-construction via
    /// [`Registry::set_tracer`]. Components must read it lazily (at use
    /// time, through [`Registry::tracer`]) rather than caching at
    /// construction, because arming happens after the system is built.
    tracer: RwLock<Tracer>,
}

impl Registry {
    pub fn new() -> Arc<Self> {
        Arc::new(Registry::default())
    }

    /// Get or create the counter with this name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(self.counters.write().entry(name.to_string()).or_default())
    }

    /// Get or create the gauge with this name.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(self.gauges.write().entry(name.to_string()).or_default())
    }

    /// Get or create the histogram with this name.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(self.histograms.write().entry(name.to_string()).or_default())
    }

    /// Append a typed event to the trace ring.
    pub fn event(&self, now: SimInstant, kind: EventKind) {
        self.events.record(now, kind);
    }

    /// Append an event attributed to the span it occurred inside.
    pub fn event_with_span(&self, now: SimInstant, kind: EventKind, ctx: Option<SpanContext>) {
        self.events
            .record_with_span(now, kind, ctx.map(|c| (c.trace, c.span)));
    }

    /// Install (or replace) the span tracer. Arming is done once, after
    /// system construction, by `ArchiveSystem::arm_tracing` or a bench rig.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.tracer.write() = tracer;
    }

    /// A clone of the current tracer handle (cheap: one `Arc` clone when
    /// armed, a `None` copy when disabled).
    pub fn tracer(&self) -> Tracer {
        self.tracer.read().clone()
    }

    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Freeze the registry into plain data.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            events: self.events.to_vec(),
            events_dropped: self.events.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_handle() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_captures_everything() {
        let reg = Registry::new();
        reg.counter("c").add(5);
        reg.gauge("g").sample(SimInstant::from_secs(1), 7);
        reg.histogram("h").record(100);
        reg.event(
            SimInstant::from_secs(2),
            EventKind::Marker {
                label: "phase".into(),
            },
        );
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), 5);
        assert_eq!(snap.gauge("g").unwrap().value, 7);
        assert_eq!(snap.gauge("g").unwrap().samples.len(), 1);
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(snap.events.len(), 1);
        // and the snapshot round-trips through JSON
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn tracer_is_disabled_until_armed_and_events_link_spans() {
        let reg = Registry::new();
        assert!(!reg.tracer().is_armed());
        reg.set_tracer(Tracer::armed(1));
        let t = reg.tracer();
        assert!(t.is_armed());
        let g = t.root("r", 0, SimInstant::EPOCH).unwrap();
        reg.event_with_span(
            SimInstant::EPOCH,
            EventKind::WorkerDied { rank: 1 },
            Some(g.ctx()),
        );
        let snap = reg.snapshot();
        assert_eq!(snap.events[0].span, Some((g.ctx().trace, g.ctx().span)));
    }

    #[test]
    fn registry_is_share_safe() {
        let reg = Registry::new();
        let c = reg.counter("threads");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
