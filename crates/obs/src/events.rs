//! Structured event trace: a bounded ring of typed events, each stamped
//! with the simulated clock and host wall time.

use copra_simtime::SimInstant;
use copra_trace::{SpanId, TraceId};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::{SystemTime, UNIX_EPOCH};

/// Default ring capacity; oldest events are evicted first.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// What happened. Variants mirror the archive stack's layers: tape
/// mechanics, HSM data movement, PFTool scheduling.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EventKind {
    /// A cartridge was mounted into a drive (robot fetch + load + verify).
    TapeMount { drive: u32, tape: String },
    /// A cartridge was dismounted (rewind + unload + robot stow).
    TapeDismount { drive: u32, tape: String },
    /// A mounted drive changed owning storage agent (§6.2 hand-off:
    /// forced rewind + label re-verify).
    AgentHandoff { drive: u32, tape: String },
    /// HSM migrated a file to tape.
    Migrate { bytes: u64 },
    /// HSM recalled a file from tape.
    Recall { bytes: u64 },
    /// An aggregation container filled and was flushed to tape.
    ContainerFill { members: u32, bytes: u64 },
    /// The recall scheduler assigned a tape's requests to a node;
    /// `affinity_hit` is true when the tape was already bound to that node.
    RecallAssign {
        tape: String,
        node: u32,
        affinity_hit: bool,
    },
    /// A PFTool worker went busy (was dispatched a job).
    WorkerBusy { rank: u32 },
    /// A PFTool worker went idle (asked the manager for work).
    WorkerIdle { rank: u32 },
    /// Manager queue depths at a sampling point.
    QueueSample {
        dirq: u32,
        nameq: u32,
        copyq: u32,
        tapecq: u32,
    },
    /// The fault plane injected a scripted or probabilistic fault.
    FaultInjected { kind: String, detail: String },
    /// The tape library fenced a hard-failed drive (volume freed, all
    /// further operations on the drive rejected).
    DriveFenced { drive: u32 },
    /// A mover/FTA daemon died holding an assignment.
    WorkerDied { rank: u32 },
    /// The manager re-dispatched in-flight work lost to a fault.
    Redispatch { what: String, count: u64 },
    /// A recovery/scrub action repaired torn state after a crash (`what`
    /// names the action: "replay", "rollback", "scrub-orphan", ...).
    Recovery { what: String, detail: String },
    /// Free-form marker (campaign phase boundaries etc).
    Marker { label: String },
}

/// One trace entry: the simulated instant it describes, the host wall
/// clock when it was recorded (microseconds since the Unix epoch), and
/// the typed payload.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Event {
    pub sim_ns: u64,
    pub wall_us: u64,
    pub kind: EventKind,
    /// The trace span that was live when the event fired (fault-plane
    /// events record the span they interrupted). Absent unless a tracer
    /// is armed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub span: Option<(TraceId, SpanId)>,
}

/// Bounded ring buffer of [`Event`]s.
#[derive(Debug)]
pub struct EventRing {
    ring: Mutex<VecDeque<Event>>,
    capacity: usize,
    dropped: Mutex<u64>,
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventRing {
    pub fn with_capacity(capacity: usize) -> Self {
        EventRing {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            dropped: Mutex::new(0),
        }
    }

    fn wall_us() -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    }

    pub fn record(&self, now: SimInstant, kind: EventKind) {
        self.record_with_span(now, kind, None);
    }

    /// Record an event attributed to the trace span it occurred inside.
    pub fn record_with_span(
        &self,
        now: SimInstant,
        kind: EventKind,
        span: Option<(TraceId, SpanId)>,
    ) {
        let event = Event {
            sim_ns: now.as_nanos(),
            wall_us: Self::wall_us(),
            kind,
            span,
        };
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            *self.dropped.lock() += 1;
        }
        ring.push_back(event);
    }

    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// How many events were evicted to make room.
    pub fn dropped(&self) -> u64 {
        *self.dropped.lock()
    }

    pub fn to_vec(&self) -> Vec<Event> {
        self.ring.lock().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_records_in_order() {
        let ring = EventRing::with_capacity(8);
        ring.record(
            SimInstant::from_secs(1),
            EventKind::TapeMount {
                drive: 0,
                tape: "T00001".into(),
            },
        );
        ring.record(SimInstant::from_secs(2), EventKind::Recall { bytes: 42 });
        let events = ring.to_vec();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].sim_ns, 1_000_000_000);
        assert!(matches!(events[1].kind, EventKind::Recall { bytes: 42 }));
    }

    #[test]
    fn events_carry_optional_span_attribution() {
        let ring = EventRing::with_capacity(8);
        ring.record(SimInstant::EPOCH, EventKind::Marker { label: "a".into() });
        ring.record_with_span(
            SimInstant::from_secs(1),
            EventKind::WorkerDied { rank: 4 },
            Some((TraceId(7), SpanId(9))),
        );
        let events = ring.to_vec();
        assert_eq!(events[0].span, None);
        assert_eq!(events[1].span, Some((TraceId(7), SpanId(9))));
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = EventRing::with_capacity(4);
        for i in 0..10u64 {
            ring.record(SimInstant::from_nanos(i), EventKind::Migrate { bytes: i });
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.to_vec()[0].sim_ns, 6);
    }
}
