//! Plain-data snapshot types: what a [`crate::Registry`] looks like at a
//! point in time. All types serde round-trip, so snapshots can be dumped
//! to JSON (`--metrics-out`), archived next to experiment results, and
//! reloaded for comparison.

use std::collections::BTreeMap;

pub use crate::events::Event as EventSnapshot;
use crate::metrics::GaugeSample;

/// A gauge at snapshot time: its last value plus the retained sample ring.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct GaugeSnapshot {
    pub value: i64,
    pub samples: Vec<GaugeSample>,
}

/// One occupied log2 bucket: values in `[2^log2, 2^(log2+1))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HistogramBucket {
    pub log2: u32,
    pub count: u64,
}

/// A histogram at snapshot time; empty buckets are omitted.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Everything a registry knows, as plain data. `BTreeMap` keys keep the
/// JSON output deterministically ordered.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub events: Vec<EventSnapshot>,
    /// Events evicted from the ring before this snapshot was taken.
    pub events_dropped: u64,
}

impl MetricsSnapshot {
    /// Counter value by name (0 when absent — counters that never fired
    /// are indistinguishable from counters never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<&GaugeSnapshot> {
        self.gauges.get(name)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serialize metrics snapshot")
    }

    /// Parse a snapshot back from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        counters.insert("tape.mounts".to_string(), 12);
        counters.insert("hsm.lan_bytes".to_string(), 1 << 30);
        let mut gauges = BTreeMap::new();
        gauges.insert(
            "pftool.copyq_depth".to_string(),
            GaugeSnapshot {
                value: 3,
                samples: vec![
                    GaugeSample {
                        sim_ns: 10,
                        value: 5,
                    },
                    GaugeSample {
                        sim_ns: 20,
                        value: 3,
                    },
                ],
            },
        );
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "tape.backhitch_penalty_ns".to_string(),
            HistogramSnapshot {
                count: 2,
                sum: 3_000,
                buckets: vec![HistogramBucket { log2: 10, count: 2 }],
            },
        );
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            events: vec![EventSnapshot {
                sim_ns: 42,
                wall_us: 1_700_000_000_000_000,
                kind: EventKind::RecallAssign {
                    tape: "T00007".into(),
                    node: 3,
                    affinity_hit: true,
                },
                span: None,
            }],
            events_dropped: 1,
        }
    }

    #[test]
    fn json_round_trip() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("parse back");
        assert_eq!(snap, back);
    }

    #[test]
    fn accessors() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("tape.mounts"), 12);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("pftool.copyq_depth").unwrap().value, 3);
        assert!(snap.gauge("missing").is_none());
        let h = snap.histogram("tape.backhitch_penalty_ns").unwrap();
        assert!((h.mean() - 1_500.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(HistogramSnapshot::default().mean(), 0.0);
    }
}
