//! Lock-cheap metric primitives: counters, gauges, log2 histograms.

use copra_simtime::SimInstant;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use crate::snapshot::{GaugeSnapshot, HistogramBucket, HistogramSnapshot};

/// How many gauge samples each gauge retains (oldest evicted first).
pub const DEFAULT_GAUGE_SAMPLE_CAPACITY: usize = 4096;

/// A monotonic counter. Incrementing is one relaxed atomic add.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time gauge sample (simulated timestamp + value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GaugeSample {
    pub sim_ns: u64,
    pub value: i64,
}

/// A last-value gauge with a bounded ring of timestamped samples.
///
/// `set`/`add` only touch the atomic; `sample` additionally appends to the
/// ring (under a short mutex) so sampled series — e.g. PFTool queue depths
/// on the WatchDog cadence — survive into the snapshot.
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
    samples: Mutex<VecDeque<GaugeSample>>,
    capacity: usize,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    pub fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
            samples: Mutex::new(VecDeque::new()),
            capacity: DEFAULT_GAUGE_SAMPLE_CAPACITY,
        }
    }

    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Set the gauge and record a timestamped sample.
    pub fn sample(&self, now: SimInstant, value: i64) {
        self.set(value);
        let mut ring = self.samples.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(GaugeSample {
            sim_ns: now.as_nanos(),
            value,
        });
    }

    pub fn sample_count(&self) -> usize {
        self.samples.lock().len()
    }

    pub fn snapshot(&self) -> GaugeSnapshot {
        GaugeSnapshot {
            value: self.get(),
            samples: self.samples.lock().iter().copied().collect(),
        }
    }
}

/// Number of log2 buckets; bucket `i` counts values in `[2^i, 2^(i+1))`
/// (bucket 0 also absorbs zero), covering the full `u64` range.
const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log2 histogram. Recording is two relaxed atomic adds
/// plus one on the bucket — no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then_some(HistogramBucket {
                    log2: i as u32,
                    count,
                })
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_set_and_sample() {
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.sample(SimInstant::from_secs(1), 9);
        g.sample(SimInstant::from_secs(2), 4);
        assert_eq!(g.get(), 4);
        let snap = g.snapshot();
        assert_eq!(snap.samples.len(), 2);
        assert_eq!(snap.samples[0].value, 9);
        assert_eq!(snap.samples[1].sim_ns, 2_000_000_000);
    }

    #[test]
    fn gauge_ring_evicts_oldest() {
        let g = Gauge::new();
        for i in 0..(DEFAULT_GAUGE_SAMPLE_CAPACITY + 10) {
            g.sample(SimInstant::from_nanos(i as u64), i as i64);
        }
        let snap = g.snapshot();
        assert_eq!(snap.samples.len(), DEFAULT_GAUGE_SAMPLE_CAPACITY);
        assert_eq!(snap.samples[0].value, 10);
    }

    #[test]
    fn histogram_log2_buckets() {
        let h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        h.record(u64::MAX); // bucket 63
        assert_eq!(h.count(), 6);
        let snap = h.snapshot();
        let by_log2 = |l: u32| {
            snap.buckets
                .iter()
                .find(|b| b.log2 == l)
                .map(|b| b.count)
                .unwrap_or(0)
        };
        assert_eq!(by_log2(0), 2);
        assert_eq!(by_log2(1), 2);
        assert_eq!(by_log2(10), 1);
        assert_eq!(by_log2(63), 1);
    }

    #[test]
    fn histogram_mean() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        h.record(10);
        h.record(30);
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }
}
