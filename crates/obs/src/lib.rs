//! # copra-obs — unified observability for the archive stack
//!
//! Every layer of the simulator (tape library, TSM server/agents, PFTool
//! engine, the integrated `ArchiveSystem`) reports into one shared
//! [`Registry`]:
//!
//! - **Counters** — monotonic `AtomicU64` (tape mounts, LAN bytes, recall
//!   affinity hits). Incrementing is a single relaxed atomic add; no locks
//!   on the hot path.
//! - **Gauges** — last-value `AtomicI64` plus a bounded sample ring so
//!   sampled series (PFTool queue depths under the WatchDog cadence)
//!   survive into the snapshot.
//! - **Histograms** — fixed 64-bucket log2 latency/size histograms, one
//!   atomic per bucket (tape backhitch penalties, container fill sizes).
//! - **Events** — a bounded ring of typed [`Event`]s, each stamped with
//!   the simulated clock ([`SimInstant`]) *and* host wall time, so traces
//!   can be correlated with the run that produced them.
//!
//! A [`Registry::snapshot`] is a plain-data [`MetricsSnapshot`]: serde
//! round-trippable, JSON-exportable (`--metrics-out` in the bench
//! binaries), and the substrate for `ArchiveSystem`'s campaign dashboard.
//!
//! Handles are shared by `Arc`: the registry is created once at the top of
//! the stack and threaded down through constructors; components built
//! stand-alone (unit tests, micro-benches) create their own private
//! registry so instrumentation never needs a feature gate.

mod events;
mod metrics;
mod registry;
mod snapshot;

pub use events::{Event, EventKind, EventRing, DEFAULT_EVENT_CAPACITY};
pub use metrics::{Counter, Gauge, GaugeSample, Histogram, DEFAULT_GAUGE_SAMPLE_CAPACITY};
pub use registry::Registry;
pub use snapshot::{
    EventSnapshot, GaugeSnapshot, HistogramBucket, HistogramSnapshot, MetricsSnapshot,
};

pub use copra_simtime::SimInstant;
