//! # copra — a COTS Parallel Archive System, reproduced in Rust
//!
//! Facade crate for the `copra` workspace: re-exports every subsystem under
//! one roof so that examples and integration tests can `use copra::...`.
//!
//! The workspace reproduces *“Integration Experiences and Performance
//! Studies of A COTS Parallel Archive System”* (LANL, IEEE CLUSTER 2010):
//! GPFS + TSM + a thin layer of user-space glue (PFTool, ArchiveFUSE,
//! synchronous deleter, trashcan, a MySQL index of the TSM database)
//! integrated into a parallel tape archive. See `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! Subsystem map:
//!
//! * [`simtime`] — virtual clock and FIFO resource timelines (all device
//!   performance is computed in simulated time).
//! * [`vfs`] — in-memory POSIX-ish file-system substrate.
//! * [`pfs`] — GPFS stand-in: storage pools, ILM policy engine, DMAPI.
//! * [`tape`] — tape library: cartridges, drives, robot, LTO timing.
//! * [`metadb`] — MySQL stand-in: indexed embedded tables.
//! * [`hsm`] — TSM stand-in: object DB, LAN/LAN-free movers, migrate /
//!   recall / reconcile / aggregation.
//! * [`journal`] — write-ahead intent log making multi-store mutations
//!   (namespace + TSM DB + catalog) crash-recoverable.
//! * [`fuse`] — ArchiveFUSE chunking overlay (N-to-1 → N-to-N).
//! * [`cluster`] — FTA cluster nodes, LoadManager, batch launcher.
//! * [`faults`] — seeded deterministic fault injection (drive/media/robot/
//!   mover faults) and the retry/backoff machinery recovery paths use.
//! * [`mpirt`] — mini message-passing runtime for PFTool's process model.
//! * [`obs`] — metrics registry, event tracing, and the device-utilization
//!   snapshot every subsystem reports into.
//! * [`trace`] — causal span tracing: deterministic sim+wall-time span
//!   trees, the phase profiler, critical-path extraction, Chrome export.
//! * [`pftool`] — the paper's parallel tree walker / copier (`pfls`,
//!   `pfcp`, `pfcm`).
//! * [`core`] — the integrated archive system and its public API.
//! * [`workloads`] — Roadrunner Open Science trace generator and file-mix
//!   generators.

pub use copra_cluster as cluster;
pub use copra_core as core;
pub use copra_faults as faults;
pub use copra_fuse as fuse;
pub use copra_hsm as hsm;
pub use copra_journal as journal;
pub use copra_metadb as metadb;
pub use copra_mpirt as mpirt;
pub use copra_obs as obs;
pub use copra_pfs as pfs;
pub use copra_pftool as pftool;
pub use copra_simtime as simtime;
pub use copra_stager as stager;
pub use copra_tape as tape;
pub use copra_trace as trace;
pub use copra_vfs as vfs;
pub use copra_workloads as workloads;
