//! End-to-end fault injection and recovery: a retrieval campaign survives
//! a drive hard-failure, media errors and a mover crash with zero lost
//! bytes, the same seed reproduces the same simulated outcome, and a
//! fault-free run leaves no trace of the recovery machinery.

use copra::cluster::NodeId;
use copra::core::{ArchiveSystem, SystemConfig};
use copra::faults::FaultPlan;
use copra::hsm::DataPath;
use copra::pftool::PftoolConfig;
use copra::simtime::SimDuration;
use copra::vfs::Content;

/// Rank layout with one ReadDir: 0 Manager, 1 OutPut, 2 WatchDog,
/// 3 ReadDir, 4 the single Worker, 5 the single TapeProc.
const WORKER_RANK: u32 = 4;

/// A fully serial world (one of each mover kind) keeps message orders —
/// and therefore simulated-time outcomes — reproducible run to run.
fn serial_config() -> PftoolConfig {
    PftoolConfig {
        readdir_procs: 1,
        workers: 1,
        tape_procs: 1,
        ..PftoolConfig::test_small()
    }
}

/// Large files land in the fast pool; the two media-error victims are
/// small so they live in the slow pool, whose device bank nothing else
/// touches while their retry restores run.
fn big(i: u64) -> Content {
    Content::synthetic(100 + i, 4_000_000 + i * 50_000)
}
fn small(i: u64) -> Content {
    Content::synthetic(200 + i, 400_000)
}

#[derive(Debug, PartialEq)]
struct Outcome {
    sim_ns: u64,
    bytes: u64,
    tape_restores: u64,
    injected: u64,
    drive_failures: u64,
    fences: u64,
    media_errors: u64,
    mover_crashes: u64,
    redispatches: u64,
    retries: u64,
    transients: u64,
}

/// Build an archive with ten migrated files, optionally arm the standard
/// fault scenario (1 drive failure + 2 media errors + 1 mover crash), run
/// the retrieval campaign, verify every byte, and report what happened.
fn run_campaign(faulty: bool) -> Outcome {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    sys.archive().mkdir_p("/arch").unwrap();
    let mut paths = Vec::new();
    for i in 0..8u64 {
        let p = format!("/arch/f{i}.dat");
        sys.archive().create_file(&p, 0, big(i)).unwrap();
        paths.push((p, big(i)));
    }
    for i in 0..2u64 {
        let p = format!("/arch/s{i}.dat");
        sys.archive().create_file(&p, 0, small(i)).unwrap();
        paths.push((p, small(i)));
    }
    let mut cursor = sys.clock().now();
    let mut objids = std::collections::HashMap::new();
    for (p, _) in &paths {
        let ino = sys.archive().resolve(p).unwrap();
        let (objid, t) = sys
            .hsm()
            .migrate_file(ino, NodeId(0), DataPath::LanFree, cursor, true)
            .unwrap();
        objids.insert(p.clone(), objid);
        cursor = t;
    }
    sys.clock().advance_to(cursor);

    if faulty {
        let mut plan = FaultPlan::new(42)
            .fail_drive(0, cursor + SimDuration::from_secs(2))
            .crash_mover(WORKER_RANK, 13)
            .transient_io(0.25, SimDuration::from_secs(2));
        for i in 0..2u64 {
            let obj = sys.hsm().server().get(objids[&format!("/arch/s{i}.dat")]);
            let addr = obj.unwrap().addr;
            plan = plan.media_error(addr.tape.0, addr.seq, 1);
        }
        sys.arm_faults(plan);
    }

    let report = sys.retrieve_tree("/arch", "/back", &serial_config());
    assert!(report.stats.ok(), "{:?}", report.stats.errors);
    assert_eq!(report.stats.files, 10);
    // Zero lost bytes: every retrieved file matches its original content.
    for (p, expected) in &paths {
        let back = p.replace("/arch", "/back");
        let ino = sys.scratch().resolve(&back).unwrap();
        let got = sys.scratch().vfs().peek_content(ino).unwrap();
        assert!(got.eq_content(expected), "{back} corrupted or truncated");
    }

    let m = sys.snapshot().metrics;
    Outcome {
        sim_ns: report.stats.sim_end.as_nanos(),
        bytes: report.stats.bytes,
        tape_restores: report.stats.tape_restores,
        injected: m.counter("faults.injected"),
        drive_failures: m.counter("faults.drive_failures"),
        fences: m.counter("faults.fences"),
        media_errors: m.counter("faults.media_errors"),
        mover_crashes: m.counter("faults.mover_crashes"),
        redispatches: m.counter("faults.redispatches"),
        retries: m.counter("faults.retries"),
        transients: m.counter("faults.transient_ios"),
    }
}

#[test]
fn faulty_campaign_recovers_with_zero_lost_bytes() {
    let o = run_campaign(true);
    // All ten files restored: eight in the first pass, the two media-error
    // victims on their re-queued second pass.
    assert_eq!(o.tape_restores, 10);
    assert_eq!(o.drive_failures, 1, "{o:?}");
    assert_eq!(o.fences, 1, "{o:?}");
    assert_eq!(o.media_errors, 2, "{o:?}");
    assert_eq!(o.mover_crashes, 1, "{o:?}");
    assert!(o.transients >= 1, "{o:?}");
    assert_eq!(o.injected, 4 + o.transients, "{o:?}");
    assert!(o.redispatches >= 1, "{o:?}");
    assert!(
        o.retries >= o.transients,
        "each transient should drive at least one backoff retry: {o:?}"
    );
}

#[test]
fn faulty_campaign_is_deterministic() {
    let a = run_campaign(true);
    let b = run_campaign(true);
    assert_eq!(a, b, "same seed must reproduce the same sim outcome");
}

#[test]
fn fault_free_baseline_leaves_no_recovery_trace() {
    let o = run_campaign(false);
    assert_eq!(o.tape_restores, 10);
    // No plan armed: the faults.* metric family is never even registered,
    // so the snapshot reports zero across the board.
    assert_eq!(o.injected, 0);
    assert_eq!(o.fences, 0);
    assert_eq!(o.retries, 0);
    assert_eq!(o.redispatches, 0);
}
