//! End-to-end fault injection and recovery: a retrieval campaign survives
//! a drive hard-failure, media errors and a mover crash with zero lost
//! bytes, the same seed reproduces the same simulated outcome, and a
//! fault-free run leaves no trace of the recovery machinery.

use copra::cluster::NodeId;
use copra::core::{ArchiveSystem, SystemConfig};
use copra::faults::FaultPlan;
use copra::hsm::DataPath;
use copra::obs::{EventKind, MetricsSnapshot};
use copra::pftool::PftoolConfig;
use copra::simtime::SimDuration;
use copra::trace::Tracer;
use copra::vfs::Content;

/// Rank layout with one ReadDir: 0 Manager, 1 OutPut, 2 WatchDog,
/// 3 ReadDir, 4 the single Worker, 5 the single TapeProc.
const WORKER_RANK: u32 = 4;

/// A fully serial world (one of each mover kind) keeps message orders —
/// and therefore simulated-time outcomes — reproducible run to run.
fn serial_config() -> PftoolConfig {
    PftoolConfig {
        readdir_procs: 1,
        workers: 1,
        tape_procs: 1,
        ..PftoolConfig::test_small()
    }
}

/// Large files land in the fast pool; the two media-error victims are
/// small so they live in the slow pool, whose device bank nothing else
/// touches while their retry restores run.
fn big(i: u64) -> Content {
    Content::synthetic(100 + i, 4_000_000 + i * 50_000)
}
fn small(i: u64) -> Content {
    Content::synthetic(200 + i, 400_000)
}

#[derive(Debug, PartialEq)]
struct Outcome {
    sim_ns: u64,
    bytes: u64,
    tape_restores: u64,
    injected: u64,
    drive_failures: u64,
    fences: u64,
    media_errors: u64,
    mover_crashes: u64,
    redispatches: u64,
    retries: u64,
    transients: u64,
}

/// Build an archive with ten migrated files, optionally arm the standard
/// fault scenario (1 drive failure + 2 media errors + 1 mover crash), run
/// the retrieval campaign, verify every byte, and report what happened.
fn run_campaign(faulty: bool) -> Outcome {
    run_campaign_with(faulty, None).0
}

/// The campaign proper; an armed [`Tracer`] rides along when the caller
/// wants the causal span tree as well as the counters.
fn run_campaign_with(faulty: bool, tracer: Option<Tracer>) -> (Outcome, MetricsSnapshot) {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    if let Some(t) = &tracer {
        sys.arm_tracing(t.clone());
    }
    sys.archive().mkdir_p("/arch").unwrap();
    let mut paths = Vec::new();
    for i in 0..8u64 {
        let p = format!("/arch/f{i}.dat");
        sys.archive().create_file(&p, 0, big(i)).unwrap();
        paths.push((p, big(i)));
    }
    for i in 0..2u64 {
        let p = format!("/arch/s{i}.dat");
        sys.archive().create_file(&p, 0, small(i)).unwrap();
        paths.push((p, small(i)));
    }
    let mut cursor = sys.clock().now();
    let mut objids = std::collections::HashMap::new();
    for (p, _) in &paths {
        let ino = sys.archive().resolve(p).unwrap();
        let (objid, t) = sys
            .hsm()
            .migrate_file(ino, NodeId(0), DataPath::LanFree, cursor, true)
            .unwrap();
        objids.insert(p.clone(), objid);
        cursor = t;
    }
    sys.clock().advance_to(cursor);

    if faulty {
        let mut plan = FaultPlan::new(42)
            .fail_drive(0, cursor + SimDuration::from_secs(2))
            .crash_mover(WORKER_RANK, 13)
            .transient_io(0.25, SimDuration::from_secs(2));
        for i in 0..2u64 {
            let obj = sys.hsm().server().get(objids[&format!("/arch/s{i}.dat")]);
            let addr = obj.unwrap().addr;
            plan = plan.media_error(addr.tape.0, addr.seq, 1);
        }
        sys.arm_faults(plan);
    }

    let report = sys.retrieve_tree("/arch", "/back", &serial_config());
    assert!(report.stats.ok(), "{:?}", report.stats.errors);
    assert_eq!(report.stats.files, 10);
    // Zero lost bytes: every retrieved file matches its original content.
    for (p, expected) in &paths {
        let back = p.replace("/arch", "/back");
        let ino = sys.scratch().resolve(&back).unwrap();
        let got = sys.scratch().vfs().peek_content(ino).unwrap();
        assert!(got.eq_content(expected), "{back} corrupted or truncated");
    }

    let m = sys.snapshot().metrics;
    let outcome = Outcome {
        sim_ns: report.stats.sim_end.as_nanos(),
        bytes: report.stats.bytes,
        tape_restores: report.stats.tape_restores,
        injected: m.counter("faults.injected"),
        drive_failures: m.counter("faults.drive_failures"),
        fences: m.counter("faults.fences"),
        media_errors: m.counter("faults.media_errors"),
        mover_crashes: m.counter("faults.mover_crashes"),
        redispatches: m.counter("faults.redispatches"),
        retries: m.counter("faults.retries"),
        transients: m.counter("faults.transient_ios"),
    };
    (outcome, m)
}

#[test]
fn faulty_campaign_recovers_with_zero_lost_bytes() {
    let o = run_campaign(true);
    // All ten files restored: eight in the first pass, the two media-error
    // victims on their re-queued second pass.
    assert_eq!(o.tape_restores, 10);
    assert_eq!(o.drive_failures, 1, "{o:?}");
    assert_eq!(o.fences, 1, "{o:?}");
    assert_eq!(o.media_errors, 2, "{o:?}");
    assert_eq!(o.mover_crashes, 1, "{o:?}");
    assert!(o.transients >= 1, "{o:?}");
    assert_eq!(o.injected, 4 + o.transients, "{o:?}");
    assert!(o.redispatches >= 1, "{o:?}");
    assert!(
        o.retries >= o.transients,
        "each transient should drive at least one backoff retry: {o:?}"
    );
}

#[test]
fn faulty_campaign_is_deterministic() {
    let a = run_campaign(true);
    let b = run_campaign(true);
    assert_eq!(a, b, "same seed must reproduce the same sim outcome");
}

/// The context-propagation claim under fire: a worker crash mid-batch
/// must not sever the causal trace. Re-dispatched copies carry their
/// original request contexts, so the re-run spans hang off the *same*
/// `pftool.request` parents — one connected tree — and the `WorkerDied`
/// event names the span it interrupted.
#[test]
fn worker_death_keeps_trace_connected() {
    let run = || {
        let tracer = Tracer::armed(42);
        let (o, m) = run_campaign_with(true, Some(tracer.clone()));
        assert_eq!(o.mover_crashes, 1, "{o:?}");
        assert_eq!(
            o.tape_restores, 10,
            "traced campaign must still restore all files"
        );
        (tracer.report().expect("armed tracer yields a report"), m)
    };
    let (report, metrics) = run();
    assert_eq!(report.dropped, 0, "campaign must fit the span buffers");

    // Single connected trace: every recorded parent id resolves to a
    // span in the same report.
    let by_id: std::collections::HashMap<u64, &copra::trace::Span> =
        report.spans.iter().map(|s| (s.id.0, s)).collect();
    for s in &report.spans {
        if let Some(p) = s.parent {
            assert!(
                by_id.contains_key(&p.0),
                "span {} (key {:#x}) has a dangling parent",
                s.name,
                s.key
            );
        }
    }

    // Every copy — including the ones re-queued after the worker died —
    // descends from a `pftool.request` span under the campaign root.
    let mut copies = 0;
    for s in report.spans.iter().filter(|s| s.name == "pftool.copy") {
        copies += 1;
        let mut cur = s.parent;
        let mut through_request = false;
        while let Some(p) = cur {
            let ps = by_id[&p.0];
            through_request |= ps.name == "pftool.request";
            cur = ps.parent;
        }
        assert!(through_request, "pftool.copy span not rooted in a request");
    }
    assert!(copies > 0, "campaign recorded no copy spans");

    // The WorkerDied event records the span it interrupted, and walking
    // that span's ancestry lands on the campaign root.
    let died = metrics
        .events
        .iter()
        .find(|e| matches!(e.kind, EventKind::WorkerDied { .. }))
        .expect("WorkerDied event recorded");
    let (trace, span) = died.span.expect("WorkerDied carries span attribution");
    assert_eq!(trace, report.trace, "event points into this run's trace");
    let mut cur = Some(span);
    let mut chain = Vec::new();
    while let Some(id) = cur {
        let s = by_id
            .get(&id.0)
            .unwrap_or_else(|| panic!("event span {id:?} missing from report"));
        chain.push(s.name);
        cur = s.parent;
    }
    assert_eq!(
        chain.last().copied(),
        Some("pftool.run"),
        "WorkerDied span does not chain to the root: {chain:?}"
    );

    // Deterministic ids + sim stamps: the whole tree digests identically
    // on a re-run with the same seeds.
    let (again, _) = run();
    assert_eq!(
        report.tree_digest(),
        again.tree_digest(),
        "span tree must be reproducible under faults"
    );
}

#[test]
fn fault_free_baseline_leaves_no_recovery_trace() {
    let o = run_campaign(false);
    assert_eq!(o.tape_restores, 10);
    // No plan armed: the faults.* metric family is never even registered,
    // so the snapshot reports zero across the board.
    assert_eq!(o.injected, 0);
    assert_eq!(o.fences, 0);
    assert_eq!(o.retries, 0);
    assert_eq!(o.redispatches, 0);
}
