//! Cross-crate integration: the complete archive life cycle, end to end,
//! through the public facade (`copra::*`).

use copra::cluster::NodeId;
use copra::core::{
    migrate_candidates, ArchiveSystem, MigrationPolicy, SyncDeleter, SystemConfig, Trashcan,
};
use copra::fuse::FuseRead;
use copra::hsm::{reconcile, DataPath};
use copra::pfs::HsmState;
use copra::pftool::PftoolConfig;
use copra::simtime::{DataSize, SimDuration};
use copra::vfs::Content;
use copra::workloads::{mixed_tree, populate};

fn config() -> PftoolConfig {
    PftoolConfig::test_small()
}

/// Archive → verify → migrate → recall-on-retrieve → verify: the complete
/// round trip the system exists for, with data integrity checked at every
/// hop.
#[test]
fn archive_migrate_retrieve_roundtrip() {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    let tree = mixed_tree(60, 3_000_000, 1.2, 6, 11);
    let (files, bytes) = populate(sys.scratch(), "/campaign", &tree);

    // Archive.
    let report = sys.archive_tree("/campaign", "/archive/campaign", &config());
    assert!(report.stats.ok(), "{:?}", report.stats.errors);
    assert_eq!(report.stats.files as usize, files);
    assert_eq!(report.stats.bytes, bytes);

    // Verify.
    assert!(sys
        .verify_tree("/campaign", "/archive/campaign", &config())
        .identical());

    // Migrate everything to tape (stubs remain).
    sys.clock()
        .advance_to(sys.clock().now() + SimDuration::from_secs(86_400));
    let policy = sys.migration_policy(SimDuration::from_secs(3600));
    let scan = sys.archive().run_policy(&policy);
    let candidates = &scan.lists["migrate"];
    assert_eq!(candidates.len(), files);
    let nodes: Vec<NodeId> = sys.cluster().nodes().collect();
    let migration = migrate_candidates(
        sys.hsm(),
        candidates,
        &nodes,
        MigrationPolicy::SizeBalanced,
        DataPath::LanFree,
        sys.clock().now(),
        true,
        Some((DataSize::mb(1), DataSize::mb(64))), // aggregate the tiny tail
    );
    assert!(migration.errors.is_empty(), "{:?}", migration.errors);
    assert_eq!(migration.files, files);
    sys.clock().advance_to(migration.makespan);

    // Every file is now a stub; disk pool usage collapsed.
    for rec in sys.archive().scan_records() {
        assert_eq!(rec.hsm, HsmState::Migrated, "{} not migrated", rec.path);
    }

    // Retrieve the whole tree back to scratch: PFTool routes stubs through
    // the TapeCQs, restores, then copies.
    let retrieved = sys.retrieve_tree("/archive/campaign", "/restored", &config());
    assert!(retrieved.stats.ok(), "{:?}", retrieved.stats.errors);
    assert_eq!(retrieved.stats.files as usize, files);
    assert_eq!(retrieved.stats.tape_restores as usize, files);

    // Bit-for-bit identical to the original scratch data.
    for f in &tree.files {
        let orig = sys
            .scratch()
            .read_resident(&format!("/campaign/{}", f.rel_path))
            .unwrap();
        let back = sys
            .scratch()
            .read_resident(&format!("/restored/{}", f.rel_path))
            .unwrap();
        assert!(orig.eq_content(&back), "{} corrupted", f.rel_path);
    }
}

/// A very large file goes through fuse chunking, chunk-level tape
/// migration, and comes back whole.
#[test]
fn huge_file_fuse_tape_roundtrip() {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    let total: u64 = 400_000_000; // 2x the test rig's 200 MB fuse threshold
    let content = Content::synthetic(77, total);
    sys.scratch().mkdir_p("/src").unwrap();
    sys.scratch()
        .create_file("/src/monster.bin", 42, content.clone())
        .unwrap();

    let report = sys.archive_tree("/src", "/archive", &config());
    assert!(report.stats.ok(), "{:?}", report.stats.errors);
    assert!(sys.fuse().is_chunked("/archive/monster.bin").unwrap());
    let chunks = sys.fuse().chunks("/archive/monster.bin").unwrap();
    assert_eq!(chunks.len(), 8); // 400 MB / 50 MB chunks

    // Migrate the chunk files to tape (each its own object → N-to-N).
    let records = sys.archive().scan_records();
    let nodes: Vec<NodeId> = sys.cluster().nodes().collect();
    let migration = migrate_candidates(
        sys.hsm(),
        &records,
        &nodes,
        MigrationPolicy::SizeBalanced,
        DataPath::LanFree,
        sys.clock().now(),
        true,
        None,
    );
    assert!(migration.errors.is_empty());
    assert_eq!(migration.files, 8);
    // The chunks went to more than one volume (N-to-N).
    let tapes: std::collections::BTreeSet<u32> = sys
        .hsm()
        .server()
        .objects()
        .iter()
        .map(|o| o.addr.tape.0)
        .collect();
    assert!(
        tapes.len() > 1,
        "chunks should spread over volumes: {tapes:?}"
    );
    sys.clock().advance_to(migration.makespan);
    sys.export_catalog();

    // Reading through fuse reports the stub chunks...
    match sys.fuse().read_file("/archive/monster.bin").unwrap() {
        FuseRead::NeedsRecall(v) => assert_eq!(v.len(), 8),
        other => panic!("expected NeedsRecall: {other:?}"),
    }

    // ...and pfcp retrieval restores all of them and reassembles the file.
    let retrieved = sys.retrieve_tree("/archive/monster.bin", "/back/monster.bin", &config());
    assert!(retrieved.stats.ok(), "{:?}", retrieved.stats.errors);
    assert_eq!(retrieved.stats.tape_restores, 8);
    let back = sys.scratch().read_resident("/back/monster.bin").unwrap();
    assert!(back.eq_content(&content));
}

/// Trashcan + synchronous delete keep the tape catalog consistent with
/// the namespace — reconciliation never finds orphans.
#[test]
fn delete_paths_leave_no_orphans() {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    let tree = mixed_tree(30, 2_000_000, 0.8, 4, 3);
    populate(sys.archive(), "/data", &tree);
    let records = sys.archive().scan_records();
    let nodes: Vec<NodeId> = sys.cluster().nodes().collect();
    let migration = migrate_candidates(
        sys.hsm(),
        &records,
        &nodes,
        MigrationPolicy::SizeBalanced,
        DataPath::LanFree,
        sys.clock().now(),
        true,
        None,
    );
    assert!(migration.errors.is_empty());
    sys.clock().advance_to(migration.makespan);
    sys.export_catalog();

    // Users delete a third of the files via the trashcan.
    let trash = Trashcan::new(sys.fuse().clone());
    let victims: Vec<String> = records.iter().step_by(3).map(|r| r.path.clone()).collect();
    for v in &victims {
        trash.delete(v).unwrap();
    }
    // Nothing purged yet: all objects still live (and findable) on tape.
    assert_eq!(sys.hsm().server().db_len(), 30);

    // One user changes their mind.
    let undeleted = &victims[0];
    let parked = {
        let rec = records.iter().find(|r| &r.path == undeleted).unwrap();
        format!(
            "/.trash/{}/{}.{}",
            rec.uid,
            undeleted.rsplit('/').next().unwrap(),
            rec.ino.0
        )
    };
    trash.undelete(&parked, undeleted).unwrap();
    assert!(sys.archive().exists(undeleted));

    // Admin purge: age the trash, list, synchronously delete.
    sys.clock()
        .advance_to(sys.clock().now() + SimDuration::from_secs(40 * 86_400));
    let candidates = trash.purge_candidates(SimDuration::from_secs(30 * 86_400), u64::MAX);
    assert_eq!(candidates.len(), victims.len() - 1);
    let deleter = SyncDeleter::new(sys.hsm().clone(), sys.catalog().clone());
    let purged = deleter.purge(&candidates, sys.clock().now());
    assert!(purged.errors.is_empty(), "{:?}", purged.errors);
    assert_eq!(purged.files_deleted, victims.len() - 1);
    assert_eq!(purged.objects_deleted, victims.len() - 1);

    // The acid test: reconcile finds nothing.
    let rec = reconcile(sys.archive(), sys.hsm().server(), purged.end, false).unwrap();
    assert!(rec.orphans.is_empty(), "orphans: {:?}", rec.orphans);
    assert_eq!(sys.hsm().server().db_len(), 30 - (victims.len() - 1));
}

/// The catalog replica stays consistent with the server DB across a
/// migrate / delete / re-export cycle.
#[test]
fn catalog_export_tracks_server() {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    let tree = mixed_tree(12, 1_000_000, 0.5, 3, 9);
    populate(sys.archive(), "/d", &tree);
    let records = sys.archive().scan_records();
    let nodes: Vec<NodeId> = sys.cluster().nodes().collect();
    migrate_candidates(
        sys.hsm(),
        &records,
        &nodes,
        MigrationPolicy::RoundRobin,
        DataPath::LanFree,
        sys.clock().now(),
        false, // premigrate only
        None,
    );
    let n = sys.export_catalog();
    assert_eq!(n, 12);
    assert_eq!(sys.catalog().len(), 12);
    // Delete three objects server-side; re-export prunes the replica.
    for rec in records.iter().take(3) {
        let objid = sys.archive().hsm_objid(rec.ino).unwrap().unwrap();
        sys.hsm()
            .server()
            .delete_object(objid, sys.clock().now())
            .unwrap();
    }
    sys.export_catalog();
    assert_eq!(sys.catalog().len(), 9);
    // Every remaining row round-trips by ino and by path.
    for rec in records.iter().skip(3) {
        let by_ino = sys.catalog().by_ino(rec.ino.0);
        assert_eq!(by_ino.len(), 1);
        assert_eq!(by_ino[0].path, rec.path);
    }
}

/// Everything above, but through the jail: the allowed commands cover the
/// whole user workflow.
#[test]
fn jail_permits_the_supported_workflow() {
    let jail = copra::core::Jail::standard();
    for cmd in [
        "pfls /archive/campaign",
        "pfcp /scratch/campaign /archive/campaign",
        "pfcm /scratch/campaign /archive/campaign",
        "mv /archive/a /archive/b",
        "undelete /archive/campaign/f1",
    ] {
        assert!(jail.check(cmd).is_ok(), "{cmd} should be allowed");
    }
    for cmd in [
        "grep x /archive",
        "cat /archive/f",
        "rm /archive/f",
        "find /archive -exec cat {} ;",
    ] {
        assert!(jail.check(cmd).is_err(), "{cmd} should be refused");
    }
}
