//! Replicated-archive end-to-end: mirrored placement across two
//! libraries, a whole-library outage mid-campaign, failover recalls, and
//! the re-silver repair afterwards (the PR-7 headline test).
//!
//! One fixed-seed campaign:
//!
//! 1. migrate four files under `Mirror{2}` while both libraries are up —
//!    every object gets a replica in the other library;
//! 2. library 1 drops offline (scheduled outage window); four more
//!    migrates degrade — primary only, counted and evented — instead of
//!    failing;
//! 3. during the outage **every** file recalls successfully: objects
//!    whose cheapest copy sat in the dead library fail over to the
//!    survivor, and every recalled byte matches what was archived;
//! 4. the library returns; one `resilver` pass restores the full replica
//!    count, and a subsequent scrub reports zero under-replicated
//!    objects.
//!
//! The whole campaign runs twice and must land on the identical simulated
//! instant with identical reports — determinism is the tier-1 invariant.

use copra::cluster::NodeId;
use copra::core::{ArchiveSystem, SystemConfig};
use copra::faults::FaultPlan;
use copra::hsm::{resilver, scrub, DataPath, PlacementPolicy};
use copra::simtime::SimDuration;
use copra::vfs::Content;

const SEED: u64 = 0xC075_2010;
const OUTAGE: SimDuration = SimDuration::from_secs(86_400);

/// Comparable fingerprint of everything the campaign did.
#[derive(Debug, Clone, PartialEq)]
struct CampaignOutcome {
    migrate_ends_ns: Vec<u64>,
    recall_ends_ns: Vec<u64>,
    degraded_migrates: u64,
    replica_writes: u64,
    library_outages: u64,
    resilver_repaired: Vec<u64>,
    resilver_replicas_written: u32,
    end_ns: u64,
}

fn run_campaign() -> CampaignOutcome {
    let sys = ArchiveSystem::new(SystemConfig::test_replicated(2));
    assert_eq!(sys.hsm().placement(), PlacementPolicy::Mirror { copies: 2 });
    sys.archive().mkdir_p("/data").unwrap();
    let mut originals = Vec::new();
    for i in 0..8u64 {
        let path = format!("/data/f{i}");
        let content = Content::synthetic(100 + i, 1_500_000 + i * 10_000);
        sys.archive()
            .create_file(&path, 0, content.clone())
            .unwrap();
        originals.push((path, content));
    }

    // Phase 1: four mirrored migrates, both libraries up.
    let mut cursor = sys.clock().now();
    let mut migrate_ends = Vec::new();
    let mut objids = Vec::new();
    for (path, _) in &originals[..4] {
        let ino = sys.archive().resolve(path).unwrap();
        let (objid, t) = sys
            .hsm()
            .migrate_file(ino, NodeId(0), DataPath::LanFree, cursor, true)
            .unwrap();
        cursor = t;
        migrate_ends.push(t.as_nanos());
        objids.push(objid);
        assert_eq!(
            sys.hsm().server().copies_of(objid).len(),
            1,
            "{path}: mirrored migrate must register one replica"
        );
    }

    // Phase 2: library 1 goes dark for a day, starting now.
    let outage_start = cursor;
    let outage_end = outage_start + OUTAGE;
    sys.arm_faults(FaultPlan::new(SEED).offline_library_until(1, outage_start, outage_end));
    for (path, _) in &originals[4..] {
        let ino = sys.archive().resolve(path).unwrap();
        let (objid, t) = sys
            .hsm()
            .migrate_file(ino, NodeId(0), DataPath::LanFree, cursor, true)
            .unwrap();
        cursor = t;
        migrate_ends.push(t.as_nanos());
        objids.push(objid);
        assert!(
            sys.hsm().server().copies_of(objid).is_empty(),
            "{path}: migrate during the outage must degrade, not block"
        );
    }

    // Phase 3: recall everything while the library is still down. Objects
    // whose cheapest replica lives in library 1 fail over transparently.
    let mut recall_ends = Vec::new();
    for (path, content) in &originals {
        let ino = sys.archive().resolve(path).unwrap();
        let t = sys
            .hsm()
            .recall_file(ino, NodeId(1), DataPath::LanFree, cursor)
            .unwrap_or_else(|e| panic!("{path}: recall during outage failed: {e}"));
        assert!(t < outage_end, "{path}: recall ran past the outage window");
        cursor = t;
        recall_ends.push(t.as_nanos());
        let got = sys.archive().read_resident(path).unwrap();
        assert_eq!(&got, content, "{path}: recalled bytes differ");
    }

    // Phase 4: the library returns; one re-silver restores every replica.
    cursor = cursor.max(outage_end);
    let repair = resilver(sys.hsm(), NodeId(0), DataPath::LanFree, cursor).unwrap();
    assert_eq!(repair.examined, 8);
    assert!(
        repair.is_complete(),
        "re-silver left objects under target: {repair:?}"
    );
    assert_eq!(repair.replicas_written, 4, "{repair:?}");
    for objid in &objids {
        assert_eq!(
            sys.hsm().server().copies_of(*objid).len(),
            1,
            "object {objid} not back at full replica count"
        );
    }
    sys.export_catalog();
    let report = scrub(sys.archive(), sys.hsm().server(), sys.catalog(), repair.end).unwrap();
    assert!(
        report.under_replicated.is_empty(),
        "scrub after re-silver still sees under-replication: {report:?}"
    );
    assert!(report.diverged_replicas.is_empty(), "{report:?}");
    assert!(report.lost_stubs.is_empty(), "zero lost bytes: {report:?}");

    let m = sys.snapshot().metrics;
    CampaignOutcome {
        migrate_ends_ns: migrate_ends,
        recall_ends_ns: recall_ends,
        degraded_migrates: m.counter("replication.degraded_migrates"),
        replica_writes: m.counter("replication.replica_writes"),
        library_outages: m.counter("faults.library_outages"),
        resilver_repaired: repair.repaired.clone(),
        resilver_replicas_written: repair.replicas_written,
        end_ns: report.end.as_nanos(),
    }
}

#[test]
fn outage_campaign_fails_over_resilvers_and_is_deterministic() {
    let a = run_campaign();
    // Four migrates ran inside the outage window and degraded.
    assert_eq!(a.degraded_migrates, 4);
    // Four phase-1 replicas plus four re-silvered ones.
    assert_eq!(a.replica_writes, 8);
    // The outage was observed (and counted) exactly once.
    assert_eq!(a.library_outages, 1);
    assert_eq!(a.resilver_repaired.len(), 4);
    assert_eq!(a.resilver_replicas_written, 4);

    // Run two: identical simulated history, to the nanosecond.
    let b = run_campaign();
    assert_eq!(a, b, "same seed must reproduce the identical campaign");
}
