//! Cross-crate integration: the observability stack over a small campaign.
//!
//! Drives archive → migrate → batch recall through `ArchiveSystem`, then
//! checks that the shared metrics registry saw every layer: tape mounts,
//! recall-daemon affinity accounting, PFTool queue-depth samples, and
//! per-device utilizations — and that the snapshot survives a JSON round
//! trip and renders a dashboard.

use copra::cluster::NodeId;
use copra::core::{
    migrate_candidates, ArchiveSystem, MigrationPolicy, SystemConfig, SystemSnapshot,
};
use copra::hsm::{DataPath, RecallPolicy, RecallRequest};
use copra::obs::EventKind;
use copra::pftool::PftoolConfig;
use copra::simtime::{DataSize, SimDuration};
use copra::workloads::{mixed_tree, populate};

#[test]
fn campaign_metrics_snapshot() {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    let config = PftoolConfig::test_small();
    let tree = mixed_tree(40, 2_000_000, 1.2, 5, 7);
    populate(sys.scratch(), "/campaign", &tree);

    // Archive the tree (PFTool: queue gauges + worker transitions fire).
    let report = sys.archive_tree("/campaign", "/archive/campaign", &config);
    assert!(report.stats.ok(), "{:?}", report.stats.errors);

    // Age the files past the policy window, then migrate all to tape.
    sys.clock()
        .advance_to(sys.clock().now() + SimDuration::from_secs(86_400));
    let policy = sys.migration_policy(SimDuration::from_secs(3600));
    let scan = sys.archive().run_policy(&policy);
    let candidates = &scan.lists["migrate"];
    assert!(
        !candidates.is_empty(),
        "policy scan found nothing to migrate"
    );
    let nodes: Vec<NodeId> = sys.cluster().nodes().collect();
    let migration = migrate_candidates(
        sys.hsm(),
        candidates,
        &nodes,
        MigrationPolicy::SizeBalanced,
        DataPath::LanFree,
        sys.clock().now(),
        true,
        Some((DataSize::mb(1), DataSize::mb(64))),
    );
    assert!(migration.errors.is_empty(), "{:?}", migration.errors);
    sys.clock().advance_to(migration.makespan);

    // Recall everything through the per-node daemons so the affinity
    // accounting (hits vs handoffs) fires.
    let requests: Vec<RecallRequest> = candidates
        .iter()
        .map(|c| RecallRequest { ino: c.ino })
        .collect();
    let recall = sys
        .hsm()
        .recall_batch(
            &requests,
            RecallPolicy::TapeAffinity,
            DataPath::LanFree,
            sys.clock().now(),
        )
        .unwrap();
    sys.clock().advance_to(recall.makespan);

    let snap = sys.snapshot();
    let m = &snap.metrics;

    // Tape layer: the migration mounted cartridges and wrote bytes.
    assert!(m.counter("tape.mounts") > 0, "no tape mounts recorded");
    assert!(m.counter("tape.bytes_written") > 0);
    assert!(m.counter("tape.bytes_read") > 0, "recalls read nothing");

    // HSM layer: migrate/recall ops and the affinity accounting.
    assert!(m.counter("hsm.migrate_ops") > 0);
    assert!(m.counter("hsm.recall_ops") > 0);
    let affinity_total =
        m.counter("hsm.recall.affinity_hits") + m.counter("hsm.recall.affinity_misses");
    assert_eq!(
        affinity_total,
        requests.len() as u64,
        "every daemon assignment is either an affinity hit or a miss"
    );
    assert!(
        m.events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RecallAssign { .. })),
        "no RecallAssign events traced"
    );

    // PFTool layer: the WatchDog-cadence queue sampling left gauge samples
    // and QueueSample events behind.
    for gauge in [
        "pftool.dirq_depth",
        "pftool.nameq_depth",
        "pftool.copyq_depth",
        "pftool.tapecq_depth",
    ] {
        let g = m.gauge(gauge).unwrap_or_else(|| panic!("{gauge} missing"));
        assert!(
            g.samples.len() >= 2,
            "{gauge}: expected start+end samples at least, got {}",
            g.samples.len()
        );
    }
    assert!(
        m.events
            .iter()
            .any(|e| matches!(e.kind, EventKind::QueueSample { .. })),
        "no QueueSample events traced"
    );

    // Device layer: everything that did work shows a utilization in (0, 1].
    let busy: Vec<_> = snap.devices.iter().filter(|d| d.ops > 0).collect();
    assert!(!busy.is_empty(), "no device recorded any operations");
    assert!(
        busy.iter().any(|d| d.name.starts_with("tape.drive")),
        "no tape drive did work: {:?}",
        busy.iter().map(|d| &d.name).collect::<Vec<_>>()
    );
    for dev in &busy {
        assert!(
            dev.utilization > 0.0 && dev.utilization <= 1.0,
            "{}: utilization {} out of (0, 1]",
            dev.name,
            dev.utilization
        );
        assert!(dev.busy_secs > 0.0, "{}: ops but no busy time", dev.name);
    }

    // The snapshot survives a JSON round trip…
    let back = SystemSnapshot::from_json(&snap.to_json()).expect("parse snapshot back");
    assert_eq!(back.sim_now_ns, snap.sim_now_ns);
    assert_eq!(back.devices.len(), snap.devices.len());
    assert_eq!(back.metrics, snap.metrics);

    // …and the dashboard renders every layer of it.
    let dash = sys.dashboard();
    assert!(dash.contains("campaign dashboard"));
    assert!(dash.contains("tape.mounts"));
    assert!(dash.contains("pftool.copyq_depth"));
}
