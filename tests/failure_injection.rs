//! Cross-crate failure injection: what breaks, what survives, what is
//! reported — the operational half of an archive's credibility.

use copra::cluster::NodeId;
use copra::core::{ArchiveSystem, SystemConfig};
use copra::hsm::{reconcile, DataPath, HsmError, TsmServer};
use copra::pftool::PftoolConfig;
use copra::simtime::{DataSize, SimInstant};
use copra::tape::{TapeLibrary, TapeTiming};
use copra::vfs::Content;
use copra::workloads::{mixed_tree, populate};

fn config() -> PftoolConfig {
    PftoolConfig::test_small()
}

/// A corrupted byte range at the destination is caught by pfcm and named
/// precisely — and nothing else is flagged.
#[test]
fn pfcm_pinpoints_corruption() {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    let tree = mixed_tree(25, 2_000_000, 1.0, 5, 21);
    populate(sys.scratch(), "/src", &tree);
    let report = sys.archive_tree("/src", "/dst", &config());
    assert!(report.stats.ok());
    // Flip bytes in two files.
    for victim in ["/dst/d000/e000/f0000000.dat", "/dst/d002/e000/f0000002.dat"] {
        let ino = sys.archive().resolve(victim).unwrap();
        sys.archive()
            .write_at(ino, 100, Content::literal(&b"CORRUPT"[..]))
            .unwrap();
    }
    let cmp = sys.verify_tree("/src", "/dst", &config());
    let mut got = cmp.mismatches.clone();
    got.sort();
    assert_eq!(
        got,
        vec![
            "/src/d000/e000/f0000000.dat".to_string(),
            "/src/d002/e000/f0000002.dat".to_string()
        ]
    );
    assert_eq!(cmp.stats.files, 25);
}

/// Deleting files behind the archive's back (raw unlink, no trashcan)
/// orphans tape objects; reconcile finds exactly those and fix-mode
/// restores consistency.
#[test]
fn reconcile_catches_out_of_band_deletes() {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    let tree = mixed_tree(20, 1_000_000, 0.5, 4, 8);
    populate(sys.archive(), "/d", &tree);
    let records = sys.archive().scan_records();
    let mut cursor = sys.clock().now();
    let mut victims = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        let (objid, t) = sys
            .hsm()
            .migrate_file(rec.ino, NodeId(0), DataPath::LanFree, cursor, true)
            .unwrap();
        cursor = t;
        if i % 4 == 0 {
            victims.push((rec.path.clone(), objid));
        }
    }
    // Out-of-band unlink (what the chroot jail exists to prevent).
    for (path, _) in &victims {
        sys.archive().unlink(path).unwrap();
    }
    let rep = reconcile(sys.archive(), sys.hsm().server(), cursor, true).unwrap();
    let mut found = rep.orphans.clone();
    found.sort_unstable();
    let mut expected: Vec<u64> = victims.iter().map(|(_, o)| *o).collect();
    expected.sort_unstable();
    assert_eq!(found, expected);
    // Fixed: second pass is clean and tape records are gone.
    let rep2 = reconcile(sys.archive(), sys.hsm().server(), rep.end, false).unwrap();
    assert!(rep2.orphans.is_empty());
}

/// Recalling a file whose tape object was deleted fails with a precise
/// error instead of corrupting anything.
#[test]
fn recall_of_deleted_object_fails_cleanly() {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    let ino = sys
        .archive()
        .create_file("/f", 0, Content::synthetic(1, 1_000_000))
        .unwrap();
    let (objid, t) = sys
        .hsm()
        .migrate_file(ino, NodeId(0), DataPath::LanFree, SimInstant::EPOCH, true)
        .unwrap();
    sys.hsm().server().delete_object(objid, t).unwrap();
    let err = sys
        .hsm()
        .recall_file(ino, NodeId(0), DataPath::LanFree, t)
        .unwrap_err();
    assert_eq!(err, HsmError::NoSuchObject(objid));
    // The stub is still a stub — not silently zeroed.
    assert_eq!(sys.archive().stat("/f").unwrap().size, 1_000_000);
}

/// When every volume is full the server says so, and the error carries
/// the size that would not fit.
#[test]
fn out_of_volumes_is_explicit() {
    let timing = TapeTiming {
        capacity: DataSize::mb(10),
        ..TapeTiming::lto4()
    };
    let server = TsmServer::roadrunner(TapeLibrary::new(1, 2, timing));
    let cluster = copra::cluster::FtaCluster::new(copra::cluster::ClusterConfig::tiny(1));
    let pfs = copra::pfs::Pfs::scratch("a", copra::simtime::Clock::new(), 2);
    let hsm = copra::hsm::Hsm::new(pfs.clone(), server, cluster);
    let mut cursor = SimInstant::EPOCH;
    let mut failed = None;
    for i in 0..4u64 {
        let ino = pfs
            .create_file(&format!("/f{i}"), 0, Content::synthetic(i, 8_000_000))
            .unwrap();
        match hsm.migrate_file(ino, NodeId(0), DataPath::LanFree, cursor, true) {
            Ok((_, t)) => cursor = t,
            Err(e) => {
                failed = Some(e);
                break;
            }
        }
    }
    assert_eq!(failed, Some(HsmError::OutOfVolumes { needed: 8_000_000 }));
}

/// The catalog replica can be stale (export not yet run); PFTool falls
/// back to the live server DB and the restore still succeeds.
#[test]
fn stale_catalog_falls_back_to_server() {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    sys.archive().mkdir_p("/arch").unwrap();
    let mut cursor = SimInstant::EPOCH;
    for i in 0..4u64 {
        let ino = sys
            .archive()
            .create_file(&format!("/arch/f{i}"), 0, Content::synthetic(i, 2_000_000))
            .unwrap();
        let (_, t) = sys
            .hsm()
            .migrate_file(ino, NodeId(0), DataPath::LanFree, cursor, true)
            .unwrap();
        cursor = t;
    }
    sys.clock().advance_to(cursor);
    // NOTE: deliberately NOT calling export_catalog() — the replica is
    // empty. retrieve_tree exports internally, so drive pfcp directly.
    assert_eq!(sys.catalog().len(), 0);
    let report = copra::pftool::pfcp(
        sys.archive_view(),
        "/arch",
        sys.scratch_view(),
        "/back",
        &config(),
        &[],
    );
    assert!(report.stats.ok(), "{:?}", report.stats.errors);
    assert_eq!(report.stats.tape_restores, 4);
}

/// Two campaigns hammering the system concurrently share the trunk: each
/// sees lower throughput than it would alone (contention is real), but
/// both complete with full integrity.
#[test]
fn concurrent_jobs_contend_for_the_trunk() {
    // Enough workers that one job nearly saturates the shared devices, so
    // a second concurrent job must slow both down.
    let wide = PftoolConfig {
        workers: 8,
        ..config()
    };
    let solo_secs = {
        let sys = ArchiveSystem::new(SystemConfig::test_small());
        let tree = mixed_tree(10, 500_000_000, 0.1, 4, 1);
        populate(sys.scratch(), "/a", &tree);
        let r = sys.archive_tree("/a", "/arch-a", &wide);
        assert!(r.stats.ok());
        r.stats.sim_seconds()
    };
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    let tree_a = mixed_tree(10, 500_000_000, 0.1, 4, 1);
    let tree_b = mixed_tree(10, 500_000_000, 0.1, 4, 2);
    populate(sys.scratch(), "/a", &tree_a);
    populate(sys.scratch(), "/b", &tree_b);
    // Run both jobs from the same simulated instant (threads share devices).
    let sys2 = sys.clone();
    let wide2 = wide.clone();
    let h = std::thread::spawn(move || sys2.archive_tree("/b", "/arch-b", &wide2));
    let ra = sys.archive_tree("/a", "/arch-a", &wide);
    let rb = h.join().unwrap();
    assert!(ra.stats.ok() && rb.stats.ok());
    let contended = ra.stats.sim_seconds().max(rb.stats.sim_seconds());
    assert!(
        contended > solo_secs * 1.2,
        "two jobs ({contended:.1}s) should be noticeably slower than one ({solo_secs:.1}s)"
    );
    assert!(sys.verify_tree("/a", "/arch-a", &config()).identical());
    assert!(sys.verify_tree("/b", "/arch-b", &config()).identical());
}
