//! The exhaustive crash-point sweep (the PR-5 headline test).
//!
//! A mixed migrate / sync-delete / trash-purge / reclaim scenario is run
//! once with an *empty* armed fault plan to enumerate every crash point
//! the code path consults. Then, for every (site, occurrence) pair, a
//! fresh system runs the same scenario, crashes there — genuinely torn
//! state, simulated process death — recovers, and must satisfy all four
//! invariants:
//!
//! 1. **zero lost bytes** — every surviving file's data is retrievable
//!    (resident bytes on disk, or a live tape object of the right
//!    length), and no never-deleted file disappeared;
//! 2. **zero orphans** — reconcile finds no unreferenced DB objects;
//! 3. **zero dangling stubs** — no Migrated stub points at a vanished
//!    object (`scrub.lost_stubs` empty);
//! 4. **catalog ≡ server DB** — a re-export writes zero rows and the
//!    catalog indexes verify.
//!
//! The whole sweep runs twice with the same seed and must produce
//! identical outcomes, point for point.

use copra::cluster::NodeId;
use copra::core::{ArchiveSystem, SyncDeleteError, SyncDeleter, SystemConfig, Trashcan};
use copra::faults::{FaultPlan, FaultPlane};
use copra::hsm::{reconcile, DataPath, HsmError};
use copra::pfs::HsmState;
use copra::simtime::{SimDuration, SimInstant};
use copra::vfs::Content;
use std::collections::BTreeMap;
use std::sync::Arc;

const SEED: u64 = 2010;

/// (name, size): three files that survive the scenario, one sync-deleted,
/// one trashed-and-purged.
const FILES: [(&str, u64); 5] = [
    ("keep0", 2_000_000),
    ("keep1", 2_400_000),
    ("keep2", 2_800_000),
    ("del", 2_200_000),
    ("trash", 1_600_000),
];

struct Scenario {
    sys: ArchiveSystem,
    plane: Arc<FaultPlane>,
    /// Original logical sizes, keyed by /data path.
    originals: BTreeMap<String, u64>,
    /// Site where the simulated process died, if the armed crash fired.
    crashed: Option<String>,
    /// Last simulated instant the scenario reached before dying/finishing.
    end: SimInstant,
}

/// Run the mixed scenario: migrate everything (punching holes), trash and
/// purge one file, sync-delete another, then space-reclaim the volume the
/// deletes hollowed out. Stops dead at the armed crash point, if any.
fn run_scenario(config: SystemConfig, crash: Option<(&str, u32)>) -> Scenario {
    let sys = ArchiveSystem::new(config);
    sys.archive().mkdir_p("/data").unwrap();
    let mut originals = BTreeMap::new();
    for (i, (name, size)) in FILES.iter().enumerate() {
        let path = format!("/data/{name}");
        sys.archive()
            .create_file(&path, 0, Content::synthetic(10 + i as u64, *size))
            .unwrap();
        originals.insert(path, *size);
    }
    let plan = match crash {
        Some((site, occ)) => FaultPlan::new(SEED).crash_at(site, occ),
        None => FaultPlan::new(SEED),
    };
    let plane = sys.arm_faults(plan);
    let mut scen = Scenario {
        sys: sys.clone(),
        plane,
        originals,
        crashed: None,
        end: sys.clock().now(),
    };

    // Phase A: migrate all five files to tape, punching the disk copies.
    for (name, _) in FILES {
        let ino = sys.archive().resolve(&format!("/data/{name}")).unwrap();
        match sys
            .hsm()
            .migrate_file(ino, NodeId(0), DataPath::LanFree, scen.end, true)
        {
            Ok((_, t)) => scen.end = t,
            Err(HsmError::Crashed { site }) => {
                scen.crashed = Some(site);
                return scen;
            }
            Err(e) => panic!("unexpected migrate failure: {e}"),
        }
    }
    sys.export_catalog();
    // Remember which volume holds /data/del so phase D can reclaim it.
    let del_ino = sys.archive().resolve("/data/del").unwrap();
    let del_objid = sys.archive().hsm_objid(del_ino).unwrap().unwrap();
    let del_tape = sys.hsm().server().get(del_objid).unwrap().addr.tape;

    let deleter = SyncDeleter::new(sys.hsm().clone(), Arc::clone(sys.catalog()));
    let trash = Trashcan::new(sys.fuse().clone());

    // Phase B: user-delete /data/trash, then purge the trashcan.
    trash.delete("/data/trash").unwrap();
    let cands = trash.purge_candidates(SimDuration::from_secs(0), 0);
    assert_eq!(cands.len(), 1, "exactly the trashed file is purgeable");
    let purge = deleter.purge(&cands, scen.end);
    scen.end = purge.end.max(scen.end);
    if let Some(site) = purge.aborted {
        scen.crashed = Some(site);
        return scen;
    }
    assert!(purge.errors.is_empty(), "{:?}", purge.errors);

    // Phase C: administratively sync-delete /data/del.
    match deleter.delete_file("/data/del", scen.end) {
        Ok(r) => scen.end = r.end,
        Err(SyncDeleteError::Crashed { site }) => {
            scen.crashed = Some(site);
            return scen;
        }
        Err(e) => panic!("unexpected delete failure: {e}"),
    }

    // Phase D: reclaim the volume the deletes hollowed out.
    match sys.hsm().reclaim_volume(del_tape, scen.end) {
        Ok(r) => scen.end = r.end.max(scen.end),
        Err(HsmError::Crashed { site }) => {
            scen.crashed = Some(site);
            return scen;
        }
        Err(e) => panic!("unexpected reclaim failure: {e}"),
    }
    scen
}

/// Flattened, comparable record of what one crash-and-recover run did.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    site: String,
    occurrence: u32,
    replayed: usize,
    rolled_back: usize,
    forward_completed: usize,
    orphans_deleted: usize,
    stubs_demoted: usize,
    tape_records_dropped: usize,
    catalog_rows_fixed: u64,
    under_replicated: usize,
    diverged_replicas: usize,
    end_ns: u64,
    survivors: Vec<String>,
}

/// Recover and assert the four invariants; returns the comparable outcome.
fn recover_and_check(scen: &Scenario, site: &str, occurrence: u32) -> Outcome {
    let sys = &scen.sys;
    let ctx = format!("crash at {site}#{occurrence}");
    let recovery = sys
        .recover(scen.end)
        .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));

    // Invariant 3: zero dangling stubs — no Migrated stub lost its object.
    assert!(
        recovery.scrub.lost_stubs.is_empty(),
        "{ctx}: lost data behind stubs {:?}",
        recovery.scrub.lost_stubs
    );

    // Replication invariant: recovery leaves no half-replicated object —
    // an open intent's whole replica group rolls back together, a sealed
    // one replays fully, so the scrub replica audit finds nothing. (Both
    // lists are trivially empty under Single placement.)
    assert!(
        recovery.scrub.under_replicated.is_empty(),
        "{ctx}: half-replicated objects {:?}",
        recovery.scrub.under_replicated
    );
    assert!(
        recovery.scrub.diverged_replicas.is_empty(),
        "{ctx}: diverged replicas {:?}",
        recovery.scrub.diverged_replicas
    );

    // Invariant 1: zero lost bytes. Every file left anywhere in the
    // namespace (including trash) must have its full data retrievable.
    let mut survivors = Vec::new();
    for e in sys.archive().walk("/").unwrap() {
        if !e.attr.is_file() {
            continue;
        }
        match sys.archive().hsm_state(e.attr.ino).unwrap() {
            HsmState::Resident | HsmState::Premigrated => {
                let got = sys.archive().read_resident(&e.path).unwrap().len();
                assert_eq!(got, e.attr.size, "{ctx}: {} truncated on disk", e.path);
            }
            HsmState::Migrated => {
                let objid = sys
                    .archive()
                    .hsm_objid(e.attr.ino)
                    .unwrap()
                    .unwrap_or_else(|| panic!("{ctx}: {} stub has no objid", e.path));
                let obj =
                    sys.hsm().server().get(objid).unwrap_or_else(|_| {
                        panic!("{ctx}: {} points at dead object {objid}", e.path)
                    });
                assert_eq!(
                    obj.len, e.attr.size,
                    "{ctx}: {} tape copy truncated",
                    e.path
                );
            }
        }
        // A file that was never a delete target must still be intact.
        if let Some(&size) = scen.originals.get(&e.path) {
            assert_eq!(e.attr.size, size, "{ctx}: {} changed size", e.path);
        }
        survivors.push(e.path.clone());
    }
    for keep in ["/data/keep0", "/data/keep1", "/data/keep2"] {
        assert!(
            survivors.iter().any(|p| p == keep),
            "{ctx}: never-deleted file {keep} vanished (survivors: {survivors:?})"
        );
    }

    // Invariant 2: zero orphans.
    let rec = reconcile(sys.archive(), sys.hsm().server(), recovery.end, false).unwrap();
    assert!(rec.orphans.is_empty(), "{ctx}: orphans {:?}", rec.orphans);

    // Invariant 4: catalog ≡ server DB.
    assert_eq!(
        sys.export_catalog(),
        0,
        "{ctx}: catalog drifted from server DB"
    );
    sys.catalog()
        .verify_indexes()
        .unwrap_or_else(|e| panic!("{ctx}: catalog indexes corrupt: {e}"));

    // The journal is drained and a second recovery pass finds nothing.
    assert!(sys.journal().is_empty(), "{ctx}: journal not drained");
    let again = sys.recover(recovery.end).unwrap();
    assert!(
        again.is_clean(),
        "{ctx}: second recovery not clean: {again:?}"
    );

    Outcome {
        site: site.to_string(),
        occurrence,
        replayed: recovery.replayed,
        rolled_back: recovery.rolled_back,
        forward_completed: recovery.forward_completed,
        orphans_deleted: recovery.scrub.orphans_deleted.len(),
        stubs_demoted: recovery.scrub.stubs_demoted.len(),
        tape_records_dropped: recovery.scrub.tape_records_dropped,
        catalog_rows_fixed: recovery.scrub.catalog_rows_fixed,
        under_replicated: recovery.scrub.under_replicated.len(),
        diverged_replicas: recovery.scrub.diverged_replicas.len(),
        end_ns: recovery.end.as_nanos(),
        survivors,
    }
}

fn sweep_config(mirrored: bool) -> SystemConfig {
    if mirrored {
        SystemConfig::test_replicated(2)
    } else {
        SystemConfig::test_small()
    }
}

/// One full sweep: enumerate, then crash-and-recover at every point.
fn sweep(mirrored: bool) -> (Vec<(String, u32)>, Vec<Outcome>) {
    // Enumeration run: empty plan, nothing fires, every consult is logged.
    let scen = run_scenario(sweep_config(mirrored), None);
    assert!(scen.crashed.is_none());
    let mut points: Vec<(String, u32)> = Vec::new();
    for p in scen.plane.consulted_crash_points() {
        if !points.contains(&p) {
            points.push(p);
        }
    }
    // The fault-free run itself must recover clean (replay-only).
    let clean = recover_and_check(&scen, "none", 0);
    assert_eq!(clean.rolled_back, 0);
    assert_eq!(clean.forward_completed, 0);
    assert_eq!(clean.orphans_deleted, 0);
    assert_eq!(clean.stubs_demoted, 0);
    assert_eq!(clean.tape_records_dropped, 0);

    let mut outcomes = Vec::new();
    for (site, occ) in &points {
        let scen = run_scenario(sweep_config(mirrored), Some((site, *occ)));
        assert_eq!(
            scen.crashed.as_deref(),
            Some(site.as_str()),
            "armed crash {site}#{occ} did not fire (or fired elsewhere)"
        );
        outcomes.push(recover_and_check(&scen, site, *occ));
    }
    (points, outcomes)
}

#[test]
fn every_crash_point_recovers_with_all_invariants() {
    let (points, outcomes) = sweep(false);
    // Broad coverage: migrate, store, delete, purge and reclaim sites all
    // consulted, many more than once.
    let sites: std::collections::BTreeSet<&str> = points.iter().map(|(s, _)| s.as_str()).collect();
    for expected in [
        "migrate.begin",
        "agent.store.after_write",
        "migrate.after_store",
        "migrate.after_mark",
        "migrate.after_seal",
        "syncdel.begin",
        "syncdel.after_unlink",
        "syncdel.after_obj_delete",
        "server.delete.after_db_remove",
        "reclaim.after_copy",
        "reclaim.after_rebase",
    ] {
        assert!(
            sites.contains(expected),
            "site {expected} never consulted: {points:?}"
        );
    }
    assert!(
        points.len() >= 20,
        "expected a dense sweep, got only {} points",
        points.len()
    );
    assert_eq!(points.len(), outcomes.len());
}

#[test]
fn sweep_is_deterministic_across_runs() {
    let (points_a, a) = sweep(false);
    let (points_b, b) = sweep(false);
    assert_eq!(points_a, points_b, "enumeration must be stable");
    assert_eq!(a, b, "same seed must reproduce identical recovery outcomes");
}

/// The same sweep under two-way mirrored placement across two libraries:
/// every crash site — now including the replica-write site — recovers
/// with the original four invariants plus zero half-replicated objects,
/// and the whole sweep is bit-deterministic.
#[test]
fn mirrored_sweep_recovers_with_no_half_replicated_objects() {
    let (points, outcomes) = sweep(true);
    let sites: std::collections::BTreeSet<&str> = points.iter().map(|(s, _)| s.as_str()).collect();
    assert!(
        sites.contains("migrate.replica.after_store"),
        "replica-write crash site never consulted: {points:?}"
    );
    assert_eq!(points.len(), outcomes.len());
    // Recovery never leaves a partially-replicated group behind
    // (recover_and_check already asserted per-point; this documents it).
    assert!(outcomes.iter().all(|o| o.under_replicated == 0));
    assert!(outcomes.iter().all(|o| o.diverged_replicas == 0));

    let (points_b, outcomes_b) = sweep(true);
    assert_eq!(points, points_b, "mirrored enumeration must be stable");
    assert_eq!(outcomes, outcomes_b, "mirrored sweep must be deterministic");
}

/// Recovery paints its own span tree: a crash mid-migrate followed by
/// `recover()` yields a `recover` root whose children are the per-intent
/// replay/rollback/forward spans plus the trailing scrub pass.
#[test]
fn traced_crash_recovery_paints_recover_spans() {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    let tracer = copra::trace::Tracer::armed(SEED);
    sys.arm_tracing(tracer.clone());
    sys.archive().mkdir_p("/data").unwrap();
    sys.archive()
        .create_file("/data/a", 0, Content::synthetic(1, 2_000_000))
        .unwrap();
    sys.archive()
        .create_file("/data/b", 0, Content::synthetic(2, 2_400_000))
        .unwrap();
    // Second consult of migrate.after_store dies: the first migrate seals
    // its intent (replayed at recovery), the second leaves an open intent
    // the recovery pass must resolve.
    sys.arm_faults(FaultPlan::new(SEED).crash_at("migrate.after_store", 2));
    let mut end = sys.clock().now();
    let ino = sys.archive().resolve("/data/a").unwrap();
    let (_, t) = sys
        .hsm()
        .migrate_file(ino, NodeId(0), DataPath::LanFree, end, true)
        .unwrap();
    end = t;
    let ino = sys.archive().resolve("/data/b").unwrap();
    match sys
        .hsm()
        .migrate_file(ino, NodeId(0), DataPath::LanFree, end, true)
    {
        Err(HsmError::Crashed { site }) => assert_eq!(site, "migrate.after_store"),
        other => panic!("expected the armed crash, got {other:?}"),
    }

    let recovery = sys.recover(end).unwrap();
    assert!(
        recovery.replayed + recovery.rolled_back + recovery.forward_completed > 0,
        "{recovery:?}"
    );

    let report = tracer.report().expect("armed tracer yields a report");
    let root = report.find("recover").expect("recover root span recorded");
    assert!(root.parent.is_none(), "recover is a root span");
    let kids: Vec<&str> = report
        .spans
        .iter()
        .filter(|s| s.parent == Some(root.id))
        .map(|s| s.name)
        .collect();
    assert!(
        kids.contains(&"recover.replay"),
        "sealed first migrate must replay under the root: {kids:?}"
    );
    assert!(
        kids.iter()
            .any(|n| matches!(*n, "recover.rollback" | "recover.forward")),
        "open intent must roll back or complete forward: {kids:?}"
    );
    assert!(kids.contains(&"recover.scrub"), "{kids:?}");
    // The successful migrate's own tree is in the same report, with its
    // intent sealed under it.
    assert!(report.find("hsm.migrate").is_some());
    assert!(report.find("journal.intent.migrate-commit").is_some());
}

#[test]
fn fault_free_baseline_snapshots_zero_recovery_counters() {
    // No crash, no recover() call: the journal.recovered_* counters are
    // never registered, so a snapshot reports zero for all of them.
    let scen = run_scenario(SystemConfig::test_small(), None);
    let m = scen.sys.snapshot().metrics;
    assert_eq!(m.counter("journal.recovered_replayed"), 0);
    assert_eq!(m.counter("journal.recovered_rolled_back"), 0);
    assert_eq!(m.counter("journal.recovered_forward"), 0);
    assert_eq!(m.counter("scrub.passes"), 0);
    assert_eq!(m.counter("faults.crash_points"), 0);
}
