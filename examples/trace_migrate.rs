//! Causal tracing of a small-file migrate, end to end.
//!
//! Arms a [`copra::trace::Tracer`] on the whole stack, migrates a storm
//! of small files two ways — a few one-file-per-transaction migrates
//! (§6.1's pathology) and the rest as aggregated containers — then asks
//! the trace two questions the metrics plane cannot answer:
//!
//! * **where does time go?** — the phase profiler: inclusive/exclusive
//!   time per span name, call counts, wall p50/p99;
//! * **what was the longest causal chain?** — critical-path extraction
//!   under a chosen root, with per-hop attribution.
//!
//! Run with: `cargo run --release --example trace_migrate`

use copra::cluster::NodeId;
use copra::core::{ArchiveSystem, SystemConfig};
use copra::hsm::aggregate::migrate_aggregated;
use copra::hsm::DataPath;
use copra::simtime::{DataSize, SimInstant};
use copra::trace::Tracer;
use copra::workloads::{populate, small_file_storm};

fn main() {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    // Same seed ⇒ same trace id ⇒ identical span tree, run after run.
    let tracer = Tracer::armed(2010);
    sys.arm_tracing(tracer.clone());

    let tree = small_file_storm(64, 512 * 1024, 7);
    populate(sys.archive(), "/small", &tree);
    let records = sys.archive().scan_records();

    // Eight files the paper's way: one tape transaction each. Every
    // migrate becomes an `hsm.migrate` span with `hsm.pfs.read`,
    // `hsm.agent.store` and `journal.intent.migrate-commit` children.
    let mut cursor = SimInstant::EPOCH;
    for rec in records.iter().take(8) {
        let (_, t) = sys
            .hsm()
            .migrate_file(rec.ino, NodeId(0), DataPath::LanFree, cursor, true)
            .expect("migrate");
        cursor = t;
    }

    // The rest aggregated: containers of up to 8 MB, one transaction per
    // container (`hsm.migrate_aggregated` with per-container children).
    let rest: Vec<_> = records.iter().skip(8).map(|r| r.ino).collect();
    let out = migrate_aggregated(
        sys.hsm(),
        &rest,
        NodeId(0),
        DataPath::LanFree,
        DataSize::mb(8),
        cursor,
        true,
    )
    .expect("aggregated migrate");
    sys.clock().advance_to(out.end);
    println!(
        "migrated {} files: 8 single-transaction + {} in {} containers",
        records.len(),
        rest.len(),
        out.containers
    );

    let report = tracer.report().expect("tracer is armed");

    println!("\n-- phase table ({} spans) --", report.spans.len());
    println!("{}", report.phase_table_text());

    // Critical path under the slowest single-file migrate: where did
    // that one file's life go?
    if let Some(root) = report
        .roots()
        .filter(|s| s.name == "hsm.migrate")
        .max_by_key(|s| s.sim_duration())
    {
        println!("-- critical path: slowest hsm.migrate --");
        println!("{}", report.critical_path_text(root.id));
    }

    // And under the aggregated batch: the container pipeline.
    if let Some(agg) = report.find("hsm.migrate_aggregated") {
        println!("-- critical path: hsm.migrate_aggregated --");
        println!("{}", report.critical_path_text(agg.id));
    }
    println!("trace digest: {:016x}", report.tree_digest());
}
