//! The Roadrunner Open Science campaign, in miniature (§5).
//!
//! Generates a scaled version of the paper's 62-job / 18-day trace, drives
//! every job through the full system with `pfcp`, and prints the four
//! per-job series of Figures 8–11. The full-size reproduction is
//! `cargo run --release -p copra-bench --bin fig08_11`.
//!
//! Run with: `cargo run --release --example open_science_campaign`

use copra::core::{ArchiveSystem, SystemConfig};
use copra::pftool::PftoolConfig;
use copra::workloads::{populate, CampaignSpec, OpenScienceTrace, TreeSpec};

fn main() {
    // A 16-job, 5-day mini campaign with the same distributional shape.
    let spec = CampaignSpec {
        jobs: 16,
        days: 5,
        ..CampaignSpec::roadrunner()
    };
    let trace = OpenScienceTrace::generate(spec, 2009);
    let sys = ArchiveSystem::new(SystemConfig::roadrunner());
    let config = PftoolConfig {
        workers: 16,
        tape_procs: 0,
        ..PftoolConfig::default()
    };

    println!("job  day      files        GB      MB/s    avg-file-MB");
    println!("---  ---  ---------  --------  --------  -------------");
    let mut rates = Vec::new();
    for job in &trace.jobs {
        sys.clock().advance_to(job.submitted);
        let tree = TreeSpec {
            files: job.materialize(120),
        };
        let src = format!("/scratch/job{:02}", job.id);
        populate(sys.scratch(), &src, &tree);
        let report = sys.archive_tree(&src, &format!("/archive/job{:02}", job.id), &config);
        assert!(report.stats.ok(), "{:?}", report.stats.errors);
        let rate = report.stats.rate_mb_s();
        rates.push(rate);
        println!(
            "{:>3}  {:>3}  {:>9}  {:>8.1}  {:>8.1}  {:>13.2}",
            job.id,
            job.day,
            job.files,
            job.bytes as f64 / 1e9,
            rate,
            job.avg_file_size() / 1e6
        );
    }
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = rates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("\nachieved rates: min {min:.0}, max {max:.0}, mean {mean:.0} MB/s");
    println!("(paper, full campaign: min 73, max 1868, mean ~575 MB/s — our mean is");
    println!(" higher because competing production load is not simulated; see EXPERIMENTS.md)");
}
