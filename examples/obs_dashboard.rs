//! Observability tour: run a small campaign, then read the metrics back.
//!
//! Archives a mixed tree, migrates it to tape, recalls it through the
//! per-node daemons, and then prints what the shared `copra-obs` registry
//! saw: the plain-text campaign dashboard (per-device utilizations,
//! counters, queue-depth gauges, penalty histograms, event counts) plus a
//! few programmatic lookups on the same `SystemSnapshot`.
//!
//! Run with: `cargo run --release --example obs_dashboard`

use copra::cluster::NodeId;
use copra::core::{migrate_candidates, ArchiveSystem, MigrationPolicy, SystemConfig};
use copra::hsm::{DataPath, RecallPolicy, RecallRequest};
use copra::pftool::PftoolConfig;
use copra::simtime::{DataSize, SimDuration};
use copra::workloads::{mixed_tree, populate};

fn main() {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    let config = PftoolConfig::test_small();

    // Archive a campaign tree (PFTool queue gauges sample while it runs).
    let tree = mixed_tree(60, 3_000_000, 1.2, 6, 13);
    populate(sys.scratch(), "/campaign", &tree);
    let report = sys.archive_tree("/campaign", "/archive/campaign", &config);
    assert!(report.stats.ok(), "{:?}", report.stats.errors);
    println!(
        "archived {} files, {:.1} MB at {:.1} MB/s",
        report.stats.files,
        report.stats.bytes as f64 / 1e6,
        report.stats.rate_mb_s()
    );

    // Age, migrate to tape, then recall everything through the daemons.
    sys.clock()
        .advance_to(sys.clock().now() + SimDuration::from_secs(86_400));
    let policy = sys.migration_policy(SimDuration::from_secs(3600));
    let candidates = sys.archive().run_policy(&policy).lists["migrate"].clone();
    let nodes: Vec<NodeId> = sys.cluster().nodes().collect();
    let migration = migrate_candidates(
        sys.hsm(),
        &candidates,
        &nodes,
        MigrationPolicy::SizeBalanced,
        DataPath::LanFree,
        sys.clock().now(),
        true,
        Some((DataSize::mb(1), DataSize::mb(64))),
    );
    assert!(migration.errors.is_empty(), "{:?}", migration.errors);
    sys.clock().advance_to(migration.makespan);
    let requests: Vec<RecallRequest> = candidates
        .iter()
        .map(|c| RecallRequest { ino: c.ino })
        .collect();
    let recall = sys
        .hsm()
        .recall_batch(
            &requests,
            RecallPolicy::TapeAffinity,
            DataPath::LanFree,
            sys.clock().now(),
        )
        .unwrap();
    sys.clock().advance_to(recall.makespan);

    // The dashboard: everything the registry saw, in one screen.
    println!("\n{}", sys.dashboard());

    // The same snapshot, programmatically.
    let snap = sys.snapshot();
    println!(
        "tape mounts: {}, affinity hits/misses: {}/{}, mean drive utilization: {:.4}",
        snap.metrics.counter("tape.mounts"),
        snap.metrics.counter("hsm.recall.affinity_hits"),
        snap.metrics.counter("hsm.recall.affinity_misses"),
        snap.mean_utilization("tape.drive"),
    );
}
