//! Day-two archive operations: the extensions beyond the paper's pilot.
//!
//! * **multi-dimensional metadata search** — the paper's §7 future-work
//!   item: query the archive by owner / size / age / residency / volume
//!   without recalling a single stub;
//! * **copy storage pools** — §3.1-7's "multiple copies" requirement:
//!   second tape copies on distinct volumes, with transparent fallback
//!   when the primary's media fails;
//! * **volume reclamation** — dead space left by synchronous deletes is
//!   consolidated and cartridges returned to scratch.
//!
//! Run with: `cargo run --release --example archive_operations`

use copra::cluster::NodeId;
use copra::core::{ArchiveSearch, ArchiveSystem, Query, SystemConfig};
use copra::hsm::{reclaim_eligible, DataPath};
use copra::pfs::HsmState;
use copra::simtime::SimInstant;
use copra::vfs::Content;
use copra::workloads::{mixed_tree, populate};

fn main() {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    let tree = mixed_tree(40, 5_000_000, 1.0, 4, 77);
    populate(sys.archive(), "/proj", &tree);

    // Migrate everything with one extra tape copy per object.
    let records = sys.archive().scan_records();
    let mut cursor = SimInstant::EPOCH;
    for rec in &records {
        let (_, t) = sys
            .hsm()
            .migrate_file_with_copies(rec.ino, NodeId(0), DataPath::LanFree, cursor, true, 1)
            .unwrap();
        cursor = t;
    }
    sys.clock().advance_to(cursor);
    sys.export_catalog();
    println!(
        "migrated {} files with copy pool: {} objects in the TSM DB",
        records.len(),
        sys.hsm().server().db_len()
    );

    // --- metadata search (no tape touched) ------------------------------
    let search = ArchiveSearch::build(sys.archive(), sys.catalog());
    let big_and_migrated = search.search(&Query {
        min_size: Some(8_000_000),
        hsm: Some(HsmState::Migrated),
        ..Query::default()
    });
    println!(
        "search: {} migrated files over 8 MB (plan: {:?}); largest = {}",
        big_and_migrated.len(),
        search.plan(&Query {
            min_size: Some(8_000_000),
            hsm: Some(HsmState::Migrated),
            ..Query::default()
        }),
        big_and_migrated
            .iter()
            .max_by_key(|e| e.size)
            .map(|e| format!("{} ({:.1} MB on {:?})", e.path, e.size as f64 / 1e6, e.tape))
            .unwrap_or_default()
    );
    let by_owner = search.search(&Query {
        uid: Some(1003),
        ..Query::default()
    });
    println!("search: uid 1003 owns {} files", by_owner.len());

    // --- media failure absorbed by the copy pool ------------------------
    let victim = &records[7];
    let objid = sys
        .catalog()
        .by_ino(victim.ino.0)
        .first()
        .map(|r| r.objid)
        .unwrap();
    let addr = sys.hsm().server().get(objid).unwrap().addr;
    sys.hsm().server().library().damage_record(addr).unwrap();
    let t = sys
        .hsm()
        .recall_file(victim.ino, NodeId(1), DataPath::LanFree, sys.clock().now())
        .unwrap();
    sys.clock().advance_to(t);
    let back = sys.archive().vfs().peek_content(victim.ino).unwrap();
    println!(
        "media failure on {}: recall served from the copy volume ({} bytes intact)",
        victim.path,
        back.len()
    );
    let spec = tree
        .files
        .iter()
        .find(|f| victim.path == format!("/proj/{}", f.rel_path))
        .expect("victim comes from the generated tree");
    assert!(back.eq_content(&Content::synthetic(spec.seed, spec.size)));

    // --- delete a batch, then reclaim the dead space --------------------
    for rec in records.iter().step_by(2) {
        if rec.ino == victim.ino {
            continue;
        }
        if let Some(row) = sys.catalog().by_ino(rec.ino.0).first() {
            let end = sys
                .hsm()
                .server()
                .delete_object(row.objid, sys.clock().now())
                .unwrap();
            sys.clock().advance_to(end);
            sys.archive().unlink(&rec.path).unwrap();
        }
    }
    let reports = reclaim_eligible(sys.hsm().server(), 0.3, sys.clock().now()).unwrap();
    let moved: f64 = reports
        .iter()
        .map(|(_, r)| r.moved_bytes as f64 / 1e6)
        .sum();
    let recovered = reports.iter().filter(|(_, r)| r.erased).count();
    println!(
        "reclamation: {} volumes processed, {:.1} MB of live data consolidated, {} cartridges back to scratch",
        reports.len(),
        moved,
        recovered
    );
}
