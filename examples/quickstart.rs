//! Quickstart: the whole archive life cycle in one sitting.
//!
//! Builds the COTS Parallel Archive System (scratch PFS ↔ FTA cluster ↔
//! archive GPFS ↔ TSM ↔ tape library), then walks a dataset through it:
//!
//! 1. `pfcp` a scratch tree into the archive (parallel copy);
//! 2. `pfcm` to verify integrity;
//! 3. run the ILM policy + parallel migrator to push data to tape;
//! 4. read a stubbed file back (transparent recall);
//! 5. delete through the trashcan and purge with the synchronous deleter —
//!    and prove reconciliation finds nothing left to clean.
//!
//! Run with: `cargo run --release --example quickstart`

use copra::core::{
    migrate_candidates, ArchiveSystem, MigrationPolicy, SyncDeleter, SystemConfig, Trashcan,
};
use copra::hsm::{reconcile, DataPath};
use copra::pfs::HsmState;
use copra::pftool::PftoolConfig;
use copra::simtime::SimDuration;
use copra::vfs::Content;
use copra_cluster::NodeId;

fn main() {
    // 1. Build the system (scaled-down deployment; swap in
    //    SystemConfig::roadrunner() for the paper's full shape).
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    println!(
        "system up: {} FTA nodes, {} tape drives, pools: {:?}",
        sys.cluster().node_count(),
        sys.hsm().server().library().drive_count(),
        sys.archive()
            .pools()
            .iter()
            .map(|p| p.name().to_string())
            .collect::<Vec<_>>(),
    );

    // A simulation campaign drops results on the scratch file system.
    let scratch = sys.scratch();
    scratch.mkdir_p("/campaign/run1").unwrap();
    for i in 0..20u64 {
        scratch
            .create_file(
                &format!("/campaign/run1/snapshot{i:03}.dat"),
                1001,
                Content::synthetic(i, 5_000_000 + i * 250_000),
            )
            .unwrap();
    }

    // 2. Archive it with pfcp.
    let config = PftoolConfig::test_small();
    let report = sys.archive_tree("/campaign", "/archive/campaign", &config);
    println!(
        "pfcp: {} files, {:.1} MB in {:.1} simulated s ({:.0} MB/s)",
        report.stats.files,
        report.stats.bytes as f64 / 1e6,
        report.stats.sim_seconds(),
        report.stats.rate_mb_s()
    );
    assert!(report.stats.ok());

    // 3. Verify with pfcm.
    let cmp = sys.verify_tree("/campaign", "/archive/campaign", &config);
    println!(
        "pfcm: {} files compared, {} mismatches",
        cmp.stats.files,
        cmp.mismatches.len()
    );
    assert!(cmp.identical());

    // 4. ILM: list aged candidates and migrate them to tape, size-balanced
    //    across the cluster.
    sys.clock()
        .advance_to(sys.clock().now() + SimDuration::from_secs(7 * 86_400));
    let policy = sys.migration_policy(SimDuration::from_secs(86_400));
    let scan = sys.archive().run_policy(&policy);
    let candidates = &scan.lists["migrate"];
    println!(
        "ILM scan: {} files scanned, {} migration candidates",
        scan.scanned,
        candidates.len()
    );
    let nodes: Vec<NodeId> = sys.cluster().nodes().collect();
    let migration = migrate_candidates(
        sys.hsm(),
        candidates,
        &nodes,
        MigrationPolicy::SizeBalanced,
        DataPath::LanFree,
        sys.clock().now(),
        true, // punch holes: stubs remain on disk
        None,
    );
    println!(
        "migrated {} files / {:.1} MB to tape in {} transactions",
        migration.files,
        migration.bytes as f64 / 1e6,
        migration.transactions
    );
    sys.export_catalog();

    // 5. Transparent recall: reading a stub raises the DMAPI event; the
    //    HSM brings the data back.
    let stub = sys
        .archive()
        .resolve("/archive/campaign/run1/snapshot007.dat")
        .unwrap();
    assert_eq!(sys.archive().hsm_state(stub).unwrap(), HsmState::Migrated);
    let t = sys
        .hsm()
        .recall_file(stub, NodeId(0), DataPath::LanFree, sys.clock().now())
        .unwrap();
    sys.clock().advance_to(t);
    println!(
        "recalled snapshot007.dat: state={}",
        sys.archive().hsm_state(stub).unwrap()
    );

    // 6. User deletes a file → trashcan; admin purge → synchronous delete.
    let trash = Trashcan::new(sys.fuse().clone());
    let parked = trash
        .delete("/archive/campaign/run1/snapshot003.dat")
        .unwrap();
    println!("user delete parked at {parked}");
    sys.clock()
        .advance_to(sys.clock().now() + SimDuration::from_secs(40 * 86_400));
    let purge = trash.purge_candidates(SimDuration::from_secs(30 * 86_400), u64::MAX);
    let deleter = SyncDeleter::new(sys.hsm().clone(), sys.catalog().clone());
    let purged = deleter.purge(&purge, sys.clock().now());
    println!(
        "synchronous delete: {} files, {} tape objects ({} errors)",
        purged.files_deleted,
        purged.objects_deleted,
        purged.errors.len()
    );

    // Reconciliation confirms there is nothing left to garbage-collect —
    // the integration's whole point (§4.2.6).
    let rec = reconcile(sys.archive(), sys.hsm().server(), purged.end, false).unwrap();
    println!(
        "reconcile check: {} fs files vs {} db objects, {} orphans",
        rec.fs_files,
        rec.db_objects,
        rec.orphans.len()
    );
    assert!(rec.orphans.is_empty());
    println!("\nquickstart complete — archive is consistent end to end.");
}
