//! Tape-drive thrashing, and everything the integration does about it.
//!
//! Three vignettes from the paper:
//!
//! 1. **§4.2.3 / the chroot jail** — `grep` across an archive directory
//!    would recall every stub in arbitrary order; the jail refuses it.
//! 2. **§4.1.2-2 / tape-ordered recall** — PFTool sorts each tape's
//!    restores by sequence number so volumes read front-to-back.
//! 3. **§6.2 / recall-daemon affinity** — recalls of one tape bounced
//!    between LAN-free machines rewind + re-verify the label on every
//!    hand-off; binding a tape to one machine eliminates it.
//!
//! Run with: `cargo run --release --example tape_thrashing`

use copra::cluster::NodeId;
use copra::core::{ArchiveSystem, Jail, SystemConfig};
use copra::hsm::{DataPath, RecallPolicy, RecallRequest};
use copra::simtime::SimInstant;
use copra::vfs::Content;

fn build_migrated_archive(n: u64) -> (ArchiveSystem, Vec<copra::vfs::Ino>) {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    sys.archive().mkdir_p("/arch").unwrap();
    let mut cursor = SimInstant::EPOCH;
    let mut inos = Vec::new();
    for i in 0..n {
        let ino = sys
            .archive()
            .create_file(
                &format!("/arch/f{i:02}.dat"),
                0,
                Content::synthetic(i, 80_000_000),
            )
            .unwrap();
        let (_, t) = sys
            .hsm()
            .migrate_file(ino, NodeId(0), DataPath::LanFree, cursor, true)
            .unwrap();
        cursor = t;
        inos.push(ino);
    }
    sys.clock().advance_to(cursor);
    sys.export_catalog();
    (sys, inos)
}

fn main() {
    // 1. The jail: tape-hostile tools are simply not available.
    let jail = Jail::standard();
    for cmd in ["pfls /arch", "grep -r energy /arch", "rm -rf /arch/old"] {
        match jail.check(cmd) {
            Ok(()) => println!("jail allows : {cmd}"),
            Err(e) => println!("jail refuses: {cmd}  ({e})"),
        }
    }

    // 2. Ordered vs unordered recall of one tape's files.
    println!("\nrecall of 20 migrated files (all on one volume):");
    for (label, scramble) in [("tape order", false), ("random order", true)] {
        let (sys, mut inos) = build_migrated_archive(20);
        if scramble {
            // adversarial order: alternate ends of the tape
            let mut mixed = Vec::new();
            while !inos.is_empty() {
                mixed.push(inos.remove(0));
                if !inos.is_empty() {
                    mixed.push(inos.pop().unwrap());
                }
            }
            inos = mixed;
        }
        let reqs: Vec<RecallRequest> = inos.iter().map(|&ino| RecallRequest { ino }).collect();
        let start = sys.clock().now();
        let out = sys
            .hsm()
            .recall_batch(&reqs, RecallPolicy::TapeAffinity, DataPath::LanFree, start)
            .unwrap();
        let locates = sys.hsm().server().library().stats().totals.locates;
        println!(
            "  {label:>12}: {:.0} s, {locates} locate operations",
            out.makespan.saturating_since(start).as_secs_f64()
        );
    }

    // 3. Scatter vs affinity (the §6.2 hand-off penalty).
    println!("\nrecall assignment across 4 recall daemons:");
    for (label, policy) in [
        ("scatter (stock TSM)", RecallPolicy::Scatter),
        ("tape affinity (fix)", RecallPolicy::TapeAffinity),
    ] {
        let (sys, inos) = build_migrated_archive(20);
        let reqs: Vec<RecallRequest> = inos.iter().map(|&ino| RecallRequest { ino }).collect();
        let start = sys.clock().now();
        let out = sys
            .hsm()
            .recall_batch(&reqs, policy, DataPath::LanFree, start)
            .unwrap();
        let stats = sys.hsm().server().library().stats();
        println!(
            "  {label:>20}: {:.0} s, {} hand-offs, {} label verifies, {} rewinds",
            out.makespan.saturating_since(start).as_secs_f64(),
            stats.totals.handoffs,
            stats.totals.label_verifies,
            stats.totals.rewinds
        );
    }
}
