//! Restart-able file transfer (§4.5).
//!
//! "What about restarting a 40 Terabyte file? We don't want to start it
//! from the beginning." A very large file lands in the archive as
//! ArchiveFUSE chunks, each carrying a content fingerprint; after a failed
//! transfer, a restarted `pfcp --restart` re-sends only the chunks that
//! are missing or whose fingerprints don't match.
//!
//! Run with: `cargo run --release --example restartable_transfer`

use copra::core::{ArchiveSystem, SystemConfig};
use copra::fuse::{FuseRead, XATTR_FPRINT};
use copra::pftool::PftoolConfig;
use copra::vfs::Content;

fn main() {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    // 1 GB stands in for the 40 TB monster: with the test rig's 50 MB fuse
    // chunks it becomes 20 chunk files, same arithmetic.
    let total: u64 = 1_000_000_000;
    sys.scratch().mkdir_p("/src").unwrap();
    sys.scratch()
        .create_file("/src/checkpoint.bin", 0, Content::synthetic(40, total))
        .unwrap();

    let config = PftoolConfig {
        restart: true,
        ..PftoolConfig::test_small()
    };

    // First transfer completes...
    let first = sys.archive_tree("/src", "/archive", &config);
    assert!(first.stats.ok());
    let chunks = sys.fuse().chunks("/archive/checkpoint.bin").unwrap();
    println!(
        "first transfer: {:.0} MB in {} chunks",
        first.stats.bytes as f64 / 1e6,
        chunks.len()
    );

    // ... then we simulate the §4.5 failure: the network died mid-run, so
    // the tail chunks never arrived and the last one landed corrupt.
    let survive = chunks.len() / 2;
    for c in &chunks[survive..] {
        sys.archive().unlink(&c.path).unwrap();
    }
    let wounded = sys.archive().resolve(&chunks[survive - 1].path).unwrap();
    sys.archive().set_xattr(wounded, XATTR_FPRINT, "0").unwrap();
    println!(
        "failure injected: {} tail chunks lost, 1 chunk corrupted",
        chunks.len() - survive
    );

    // Restart: only the bad/missing chunks move again.
    let second = sys.archive_tree("/src", "/archive", &config);
    assert!(second.stats.ok());
    println!(
        "restart: re-sent {:.0} MB, skipped {:.0} MB ({}% saved)",
        second.stats.bytes as f64 / 1e6,
        second.stats.skipped_bytes as f64 / 1e6,
        100 * second.stats.skipped_bytes / total
    );

    // And the result is bit-perfect.
    match sys.fuse().read_file("/archive/checkpoint.bin").unwrap() {
        FuseRead::Data(c) => {
            assert!(c.eq_content(&Content::synthetic(40, total)));
            println!("verification: destination matches source exactly");
        }
        other => panic!("unexpected read outcome: {other:?}"),
    }

    // The naive baseline (no chunk marking) would have re-sent everything.
    let naive = PftoolConfig {
        restart: false,
        ..PftoolConfig::test_small()
    };
    let third = sys.archive_tree("/src", "/archive", &naive);
    println!(
        "naive re-run (no marking): re-sent {:.0} MB — the whole file again",
        third.stats.bytes as f64 / 1e6
    );
}
