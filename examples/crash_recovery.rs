//! Crash recovery tour: kill a synchronous delete half-way, then recover.
//!
//! Migrates a few files to tape, arms a scripted crash point that "kills
//! the process" right after the unlink of a sync-delete — the exact torn
//! state §4.2.6's integration has to fear: the file is gone from GPFS but
//! its tape object still lives in the TSM DB. `ArchiveSystem::recover`
//! reads the intent journal, completes the delete forward, scrubs the
//! stores back into agreement, and the before/after dashboards show the
//! journal and scrub counters doing it.
//!
//! Run with: `cargo run --release --example crash_recovery`

use copra::cluster::NodeId;
use copra::core::{ArchiveSystem, SyncDeleteError, SyncDeleter, SystemConfig};
use copra::faults::FaultPlan;
use copra::hsm::DataPath;
use copra::vfs::Content;
use std::sync::Arc;

fn main() {
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    sys.archive().mkdir_p("/data").unwrap();
    let mut cursor = sys.clock().now();
    for i in 0..3u64 {
        let path = format!("/data/f{i}");
        sys.archive()
            .create_file(&path, 0, Content::synthetic(i, 2_000_000 + i * 100_000))
            .unwrap();
        let ino = sys.archive().resolve(&path).unwrap();
        let (_, t) = sys
            .hsm()
            .migrate_file(ino, NodeId(0), DataPath::LanFree, cursor, true)
            .unwrap();
        cursor = t;
    }
    sys.export_catalog();
    sys.clock().advance_to(cursor);

    // The process will die right after /data/f1's unlink: past the point
    // of no return, before any tape object is deleted.
    sys.arm_faults(FaultPlan::new(7).crash_at("syncdel.after_unlink", 1));
    let deleter = SyncDeleter::new(sys.hsm().clone(), Arc::clone(sys.catalog()));
    match deleter.delete_file("/data/f1", cursor) {
        Err(SyncDeleteError::Crashed { site }) => {
            println!("sync-delete of /data/f1 died at crash point `{site}`\n")
        }
        other => panic!("expected a crash, got {other:?}"),
    }
    println!(
        "torn state: /data/f1 exists = {}, journal holds {} open intent(s)\n",
        sys.archive().exists("/data/f1"),
        sys.journal().open_intents().len(),
    );
    println!("== dashboard before recovery ==\n{}", sys.dashboard());

    let report = sys.recover(sys.clock().now()).unwrap();
    println!(
        "\nrecovered: {} replayed, {} rolled back, {} completed forward; scrub clean = {}\n",
        report.replayed,
        report.rolled_back,
        report.forward_completed,
        report.scrub.is_clean(),
    );
    assert_eq!(
        report.forward_completed, 1,
        "the torn delete finishes forward"
    );
    assert!(sys.journal().is_empty());
    assert_eq!(sys.export_catalog(), 0, "catalog agrees with the server DB");
    println!("== dashboard after recovery ==\n{}", sys.dashboard());
}
