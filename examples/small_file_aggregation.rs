//! The §6.1 war story: "a user copied millions of 8 MB files to GPFS disk.
//! Migrating these files to tape was an order of magnitude slower than
//! migrating large files — 4 MB/s instead of 100 MB/s — and it took an
//! entire weekend to migrate those files off of disk using 24 tape
//! drives."
//!
//! This example reproduces the collapse on one drive, then applies the fix
//! the paper calls for (aggregation, which TSM's backup client had but
//! migration did not) and shows individual files still recall correctly
//! from inside their containers.
//!
//! Run with: `cargo run --release --example small_file_aggregation`

use copra::cluster::NodeId;
use copra::core::{ArchiveSystem, SystemConfig};
use copra::hsm::aggregate::migrate_aggregated;
use copra::hsm::DataPath;
use copra::pfs::HsmState;
use copra::simtime::{DataSize, SimInstant};
use copra::workloads::{populate, small_file_storm};

fn main() {
    let n_files = 300usize;
    let file_size = 8_000_000u64; // the user's 8 MB files

    // --- stock HSM migration: one file = one tape transaction -----------
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    let tree = small_file_storm(n_files, file_size, 1);
    populate(sys.archive(), "/data", &tree);
    let records = sys.archive().scan_records();
    let mut cursor = SimInstant::EPOCH;
    for rec in &records {
        let (_, t) = sys
            .hsm()
            .migrate_file(rec.ino, NodeId(0), DataPath::LanFree, cursor, true)
            .unwrap();
        cursor = t;
    }
    let bytes = tree.total_bytes() as f64;
    let per_file_rate = bytes / cursor.as_secs_f64() / 1e6;
    let stats = sys.hsm().server().library().stats();
    println!(
        "stock migration:      {n_files} x 8 MB files -> {:.1} MB/s per drive ({} backhitches)",
        per_file_rate, stats.totals.backhitches
    );
    println!("                      (paper: ~4 MB/s against a 120 MB/s rated LTO-4 drive)");

    // --- aggregated migration: many files per transaction ----------------
    let sys = ArchiveSystem::new(SystemConfig::test_small());
    populate(sys.archive(), "/data", &tree);
    let records = sys.archive().scan_records();
    let inos: Vec<_> = records.iter().map(|r| r.ino).collect();
    let out = migrate_aggregated(
        &sys.hsm().clone(),
        &inos,
        NodeId(0),
        DataPath::LanFree,
        DataSize::gb(1),
        SimInstant::EPOCH,
        true,
    )
    .unwrap();
    let agg_rate = bytes / out.end.as_secs_f64() / 1e6;
    println!(
        "aggregated migration: same files in {} containers -> {:.1} MB/s per drive ({:.1}x)",
        out.containers,
        agg_rate,
        agg_rate / per_file_rate
    );

    // --- members are individually recallable -----------------------------
    let victim = records[137].ino;
    assert_eq!(sys.archive().hsm_state(victim).unwrap(), HsmState::Migrated);
    let t = sys
        .hsm()
        .recall_file(victim, NodeId(1), DataPath::LanFree, out.end)
        .unwrap();
    let back = sys.archive().vfs().peek_content(victim).unwrap();
    println!(
        "member recall:        {} came back ({} bytes) at t+{:.0}s, state={}",
        records[137].path,
        back.len(),
        t.as_secs_f64(),
        sys.archive().hsm_state(victim).unwrap()
    );
    assert_eq!(back.len(), file_size);

    // --- the weekend arithmetic ------------------------------------------
    let weekend_h = 2_000_000.0 * 8e6 / (24.0 * per_file_rate * 1e6) / 3600.0;
    let agg_h = 2_000_000.0 * 8e6 / (24.0 * agg_rate * 1e6) / 3600.0;
    println!(
        "\n2M x 8MB files on 24 drives: {weekend_h:.0} h stock (the paper's 'entire weekend'),"
    );
    println!("                             {agg_h:.1} h aggregated.");
}
