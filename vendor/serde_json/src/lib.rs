//! Offline substitute for `serde_json`.
//!
//! Prints and parses JSON against the Value-model `serde` substitute:
//! `to_string` / `to_string_pretty` lower through `Serialize::to_value`,
//! `from_str` parses to a `Value` tree and lifts through
//! `Deserialize::from_value`. Covers the full JSON grammar (objects,
//! arrays, strings with escapes, integer/float numbers, booleans, null).

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse arbitrary JSON text into a `Value` tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ----- printer --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Keep a decimal point so the value re-parses as a float.
                let s = if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{f:.1}")
                } else {
                    format!("{f}")
                };
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("eof in escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // surrogate pair
                                if !self.eat_literal("\\u") {
                                    return Err(Error("lone high surrogate".to_string()));
                                }
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(
                                c.ok_or_else(|| Error(format!("invalid \\u escape {code:#x}")))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape \\{}", other as char))),
                    }
                }
                _ => return Err(Error("eof in string".to_string())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error("eof in \\u escape".to_string()))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".to_string()))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".to_string()))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".to_string()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("bad number {text:?} at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_and_parse_round_trip() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("a \"b\"\n".to_string())),
            ("n".to_string(), Value::U64(42)),
            ("neg".to_string(), Value::I64(-7)),
            ("pi".to_string(), Value::F64(3.25)),
            ("whole".to_string(), Value::F64(2.0)),
            (
                "arr".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".to_string(), Value::Object(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back = parse_value(&text).unwrap();
            assert_eq!(back, v, "through {text}");
        }
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![(1u64, "one".to_string()), (2, "two".to_string())];
        let text = to_string(&xs).unwrap();
        let back: Vec<(u64, String)> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value(r#""Aé😀""#).unwrap();
        assert_eq!(v, Value::String("Aé😀".to_string()));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(from_str::<u64>("\"nope\"").is_err());
    }
}
