/root/repo/vendor/serde_json/target/debug/deps/serde_json-fcf6dde5dddee528.d: src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/libserde_json-fcf6dde5dddee528.rlib: src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/libserde_json-fcf6dde5dddee528.rmeta: src/lib.rs

src/lib.rs:
