/root/repo/vendor/serde_json/target/debug/deps/serde-7ca3ddd49e97c1ee.d: /root/repo/vendor/serde/src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/libserde-7ca3ddd49e97c1ee.rlib: /root/repo/vendor/serde/src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/libserde-7ca3ddd49e97c1ee.rmeta: /root/repo/vendor/serde/src/lib.rs

/root/repo/vendor/serde/src/lib.rs:
