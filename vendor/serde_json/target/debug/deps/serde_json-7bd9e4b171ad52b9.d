/root/repo/vendor/serde_json/target/debug/deps/serde_json-7bd9e4b171ad52b9.d: src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/serde_json-7bd9e4b171ad52b9: src/lib.rs

src/lib.rs:
