//! Offline substitute for `rayon`.
//!
//! Implements the slice of the rayon API the policy engine uses —
//! `par_iter().filter_map(..).collect()` and `par_iter().map(..).collect()`
//! — with real data parallelism: the input slice is split into one chunk
//! per available core and processed under `std::thread::scope`, with
//! results concatenated in input order (matching rayon's indexed
//! semantics).

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

fn worker_count(len: usize) -> usize {
    if len < 2 {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(len)
}

/// Run `f` over equal chunks of `items` on scoped threads, preserving
/// chunk order in the concatenated output.
fn chunked<'data, T: Sync, R: Send>(
    items: &'data [T],
    f: impl Fn(&'data [T]) -> Vec<R> + Sync,
) -> Vec<R> {
    let workers = worker_count(items.len());
    if workers <= 1 {
        return f(items);
    }
    let chunk = items.len().div_ceil(workers);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = items.chunks(chunk).map(|c| s.spawn(|| f(c))).collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// Entry point: `.par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'data> {
    type Item: Sync + 'data;
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// A borrowing parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

/// The combinators the workspace uses, shaped like rayon's trait.
pub trait ParallelIterator: Sized {
    type Item;

    fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
    {
        ParMap { inner: self, f }
    }

    fn filter_map<R, F>(self, f: F) -> ParFilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Sync,
    {
        ParFilterMap { inner: self, f }
    }

    /// Evaluate eagerly into an ordered `Vec`.
    fn run(self) -> Vec<Self::Item>;

    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.run().into_iter().collect()
    }

    fn count(self) -> usize {
        self.run().len()
    }
}

impl<'data, T: Sync + 'data> ParallelIterator for ParIter<'data, T> {
    type Item = &'data T;

    fn run(self) -> Vec<&'data T> {
        chunked(self.items, |chunk| chunk.iter().collect())
    }
}

pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'data, T, R, F> ParallelIterator for ParMap<ParIter<'data, T>, F>
where
    T: Sync + 'data,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        let f = &self.f;
        chunked(self.inner.items, |chunk| chunk.iter().map(f).collect())
    }
}

pub struct ParFilterMap<I, F> {
    inner: I,
    f: F,
}

impl<'data, T, R, F> ParallelIterator for ParFilterMap<ParIter<'data, T>, F>
where
    T: Sync + 'data,
    R: Send,
    F: Fn(&'data T) -> Option<R> + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        let f = &self.f;
        chunked(self.inner.items, |chunk| {
            chunk.iter().filter_map(f).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn filter_map_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let odds: Vec<u64> = v
            .par_iter()
            .filter_map(|&x| if x % 2 == 1 { Some(x * 10) } else { None })
            .collect();
        let expected: Vec<u64> = (0..10_000).filter(|x| x % 2 == 1).map(|x| x * 10).collect();
        assert_eq!(odds, expected);
    }

    #[test]
    fn map_over_empty_and_tiny() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
