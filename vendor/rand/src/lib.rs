//! Offline substitute for `rand`.
//!
//! Provides the API surface the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and the `Distribution` trait — over
//! a xoshiro256++ generator seeded through splitmix64. Deterministic for a
//! given seed (though its stream differs from upstream rand's ChaCha12
//! StdRng, so seed-calibrated expectations may shift slightly).

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in [0, 1) with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeding entry point (only the `seed_from_u64` constructor is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values producible directly from an RNG (`rng.gen()`).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

/// Types `gen_range` can sample uniformly. The single blanket
/// `SampleRange` impl below (mirroring upstream's shape) lets integer
/// literal inference flow from the use site into the range bounds.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                let span = if inclusive { span.wrapping_add(1) } else { span };
                if span == 0 {
                    // full-width inclusive range
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(lo: f64, hi: f64, _: bool, rng: &mut R) -> f64 {
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Ranges samplable by `gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// The user-facing sampling API, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        self.next_f64() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod distributions {
    use super::RngCore;

    /// Sampling from a parameterized distribution.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// xoshiro256++ — fast, well-mixed, and deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: u64 = rng.gen_range(0..86_400);
            assert!(y < 86_400);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
