/root/repo/vendor/serde/target/debug/deps/serde-8d9dc9a527520267.d: src/lib.rs

/root/repo/vendor/serde/target/debug/deps/libserde-8d9dc9a527520267.rlib: src/lib.rs

/root/repo/vendor/serde/target/debug/deps/libserde-8d9dc9a527520267.rmeta: src/lib.rs

src/lib.rs:
