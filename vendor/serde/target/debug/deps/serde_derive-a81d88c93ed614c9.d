/root/repo/vendor/serde/target/debug/deps/serde_derive-a81d88c93ed614c9.d: /root/repo/vendor/serde_derive/src/lib.rs

/root/repo/vendor/serde/target/debug/deps/libserde_derive-a81d88c93ed614c9.so: /root/repo/vendor/serde_derive/src/lib.rs

/root/repo/vendor/serde_derive/src/lib.rs:
