/root/repo/vendor/serde/target/debug/deps/serde-2cc1cc5e9181505d.d: src/lib.rs

/root/repo/vendor/serde/target/debug/deps/serde-2cc1cc5e9181505d: src/lib.rs

src/lib.rs:
