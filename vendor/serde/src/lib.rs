//! Offline substitute for `serde`.
//!
//! A deliberately simplified data model: every serializable type lowers to
//! a [`Value`] tree (`to_value`) and is rebuilt from one (`from_value`).
//! The derive macros in the companion `serde_derive` crate generate these
//! two methods with serde's standard external representation (structs as
//! objects, newtypes transparent, externally-tagged enums), so JSON
//! produced by `serde_json` is shaped the way upstream serde would shape
//! it. Formats other than JSON, zero-copy deserialization, and field
//! attributes are out of scope.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// The self-describing intermediate representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered so JSON output follows struct declaration order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object; `None` for non-objects or missing keys.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization (or key-conversion) failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// Prefix the error with the field it occurred in.
    pub fn in_field(self, field: &str) -> Self {
        Error(format!("{field}: {}", self.0))
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lower `self` into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ----- primitive impls ------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => return Err(Error::expected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) if *n <= i64::MAX as u64 => *n as i64,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

// ----- containers -----------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$(stringify!($n)),+].len();
                        if items.len() != expected {
                            return Err(Error::custom(format!(
                                "expected {expected}-tuple, got {} elements",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(Error::expected("array (tuple)", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Map keys must lower to a string or integer `Value`.
fn key_to_string(v: Value) -> Result<String, Error> {
    match v {
        Value::String(s) => Ok(s),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        other => Err(Error::custom(format!(
            "map key must be string or integer, got {}",
            other.kind()
        ))),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::String(s.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot rebuild map key from {s:?}")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_to_string(k.to_value()).expect("unsupported map key"),
                        v.to_value(),
                    )
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object (map)", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u8>::from_value(&Value::U64(3)), Ok(Some(3)));
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        assert_eq!(Vec::<(u32, String)>::from_value(&v.to_value()), Ok(v));
        let mut m = BTreeMap::new();
        m.insert("x".to_string(), 1u64);
        assert_eq!(BTreeMap::<String, u64>::from_value(&m.to_value()), Ok(m));
        let mut by_id = BTreeMap::new();
        by_id.insert(7u32, "seven".to_string());
        assert_eq!(
            BTreeMap::<u32, String>::from_value(&by_id.to_value()),
            Ok(by_id)
        );
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(Vec::<u8>::from_value(&Value::String("no".into())).is_err());
    }
}
