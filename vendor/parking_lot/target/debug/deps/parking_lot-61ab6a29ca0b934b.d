/root/repo/vendor/parking_lot/target/debug/deps/parking_lot-61ab6a29ca0b934b.d: src/lib.rs

/root/repo/vendor/parking_lot/target/debug/deps/parking_lot-61ab6a29ca0b934b: src/lib.rs

src/lib.rs:
