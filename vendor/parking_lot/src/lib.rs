//! Offline substitute for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the parking_lot API shape the
//! simulator uses: infallible `lock()`/`read()`/`write()` (poisoning is
//! swallowed — a panic while holding a lock already aborts the owning test)
//! and a `Condvar` whose `wait` takes `&mut MutexGuard`.

use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the mutex while waiting
    /// (parking_lot signature: takes the guard by `&mut`).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Safety dance: std's wait consumes and returns the guard, so move
        // the inner guard out and back in around the call.
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(&mut guard.0, inner);
        }
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
