/root/repo/vendor/rand_distr/target/debug/deps/rand_distr-93af6680d14b2a25.d: src/lib.rs

/root/repo/vendor/rand_distr/target/debug/deps/rand_distr-93af6680d14b2a25: src/lib.rs

src/lib.rs:
