/root/repo/vendor/rand_distr/target/debug/deps/rand_distr-6f4e26c0940d6855.d: src/lib.rs

/root/repo/vendor/rand_distr/target/debug/deps/librand_distr-6f4e26c0940d6855.rlib: src/lib.rs

/root/repo/vendor/rand_distr/target/debug/deps/librand_distr-6f4e26c0940d6855.rmeta: src/lib.rs

src/lib.rs:
