//! Offline substitute for `rand_distr`.
//!
//! Normal and LogNormal via Box–Muller, over the vendored `rand`. Matches
//! the distributions' parameterization exactly (ln-space mean/sigma for
//! LogNormal), so calibrated workload statistics land in the same bands.

pub use rand::distributions::Distribution;
use rand::RngCore;

/// Parameter error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// Standard deviation (or sigma) was negative or non-finite.
    BadVariance,
    /// Mean (or mu) was non-finite.
    BadMean,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BadVariance => write!(f, "standard deviation must be finite and non-negative"),
            Error::BadMean => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for Error {}

/// Gaussian with the given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() {
            return Err(Error::BadMean);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

/// One standard-normal draw via Box–Muller.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite; u2 in [0, 1).
    let u1 = 1.0 - rng.next_f64();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// exp(N(mu, sigma)): heavy-tailed sizes, parameterized in ln-space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_mean_matches_formula() {
        // E[LogNormal(mu, sigma)] = exp(mu + sigma^2/2)
        let (mu, sigma) = (1.0f64, 0.5f64);
        let d = LogNormal::new(mu, sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let expected = (mu + sigma * sigma / 2.0).exp();
        assert!(
            (mean / expected - 1.0).abs() < 0.02,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn bad_params_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
    }
}
