/root/repo/vendor/crossbeam/target/debug/deps/crossbeam-cd2d916f272a0025.d: src/lib.rs

/root/repo/vendor/crossbeam/target/debug/deps/crossbeam-cd2d916f272a0025: src/lib.rs

src/lib.rs:
