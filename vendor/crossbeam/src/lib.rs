//! Offline substitute for `crossbeam`.
//!
//! Only the `channel` module is provided — an unbounded MPMC-shaped API
//! over `std::sync::mpsc`. The MPI-style runtime clones `Sender`s freely
//! and each `Receiver` has a single owner, so mpsc semantics (including
//! its `Sender: Sync` since Rust 1.72) are a faithful stand-in.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub struct Sender<T>(mpsc::Sender<T>);
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(42).unwrap();
        assert_eq!(rx.recv(), Ok(42));
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
