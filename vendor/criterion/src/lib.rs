//! Offline substitute for `criterion`.
//!
//! Provides the API surface used by the workspace benches — groups,
//! throughput annotations, `bench_with_input`, `criterion_group!` /
//! `criterion_main!` — backed by a simple wall-clock timing loop that
//! prints mean iteration time (and derived throughput) per benchmark.
//! No statistical analysis, HTML reports, or baseline comparisons.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up pass, then the timed loop.
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, None, f);
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.name);
        run_bench(&label, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.name);
        run_bench(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let iters = b.iters.max(1);
    let per_iter = b.elapsed.as_secs_f64() / iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(", {:.1} MiB/s", n as f64 / per_iter / (1 << 20) as f64),
        Throughput::Elements(n) => format!(", {:.0} elem/s", n as f64 / per_iter),
    });
    println!(
        "bench {label}: {:.3} ms/iter ({iters} iters{})",
        per_iter * 1e3,
        rate.unwrap_or_default()
    );
}

/// Opaque-to-the-optimizer identity, re-exported like upstream.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(10).throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| 2 + 2));
        g.finish();
    }
}
