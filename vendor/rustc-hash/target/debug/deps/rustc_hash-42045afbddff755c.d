/root/repo/vendor/rustc-hash/target/debug/deps/rustc_hash-42045afbddff755c.d: src/lib.rs

/root/repo/vendor/rustc-hash/target/debug/deps/librustc_hash-42045afbddff755c.rlib: src/lib.rs

/root/repo/vendor/rustc-hash/target/debug/deps/librustc_hash-42045afbddff755c.rmeta: src/lib.rs

src/lib.rs:
