/root/repo/vendor/rustc-hash/target/debug/deps/rustc_hash-e1812121b7fd28ce.d: src/lib.rs

/root/repo/vendor/rustc-hash/target/debug/deps/rustc_hash-e1812121b7fd28ce: src/lib.rs

src/lib.rs:
