//! Offline substitute for `rustc-hash`.
//!
//! The archive simulator only relies on the `FxHashMap`/`FxHashSet` type
//! aliases; hashing quality and speed are irrelevant to correctness, so the
//! aliases resolve to the std collections with their default hasher. The
//! real crate can be swapped back in by repointing the workspace dependency.

use std::hash::{BuildHasherDefault, Hasher};

/// A fast, non-cryptographic FNV-style hasher (stand-in for the real Fx
/// algorithm; deterministic within a process, which is all callers need).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash.rotate_left(5) ^ b as u64).wrapping_mul(SEED);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(SEED);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
