//! Offline substitute for `serde_derive`.
//!
//! Generates `Serialize::to_value` / `Deserialize::from_value` impls for
//! the companion Value-model `serde` crate, using only the compiler's
//! built-in `proc_macro` API (no syn/quote available offline). The token
//! parser handles the shapes this workspace uses: non-generic named/tuple/
//! unit structs and enums with unit, tuple, and struct variants, following
//! serde's external representation (newtype transparency, externally
//! tagged enums). `#[serde(...)]` attributes are accepted and ignored,
//! with one exception: `#[serde(default)]` on a named field is honoured —
//! a missing or `Null` field decodes via `Default::default()`, so types
//! can grow fields without breaking old serialized data.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// One named field: its identifier and whether `#[serde(default)]` makes
/// a missing value decode as `Default::default()`.
#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    let (name, kind) = match parse(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = if ser {
        gen_serialize(&name, &kind)
    } else {
        gen_deserialize(&name, &kind)
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive substitute produced invalid code: {e}\");")
            .parse()
            .unwrap()
    })
}

// ----- token parsing --------------------------------------------------------

fn parse(input: TokenStream) -> Result<(String, Kind), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive substitute: generic type `{name}` is unsupported"
        ));
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Kind::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Kind::TupleStruct(count_top_level_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Kind::UnitStruct)),
            other => Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Kind::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("expected struct or enum, got `{other}`")),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Count comma-separated items at angle-bracket depth zero (tuple fields).
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut pending = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    pending = true;
                }
                '>' => {
                    depth -= 1;
                    pending = true;
                }
                ',' if depth == 0 => {
                    fields += 1;
                    pending = false;
                }
                _ => pending = true,
            },
            _ => pending = true,
        }
    }
    if pending {
        fields += 1;
    }
    fields
}

/// Does an attribute bracket-group spell `serde(...)` with a bare
/// `default` argument (possibly among others, comma-separated)?
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let mut toks = group.stream().into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.next() {
        Some(TokenTree::Group(args)) if args.delimiter() == Delimiter::Parenthesis => {
            let mut depth = 0i32;
            let mut at_arg_start = true;
            for t in args.stream() {
                match &t {
                    TokenTree::Ident(id) if at_arg_start && depth == 0 => {
                        if id.to_string() == "default" {
                            return true;
                        }
                        at_arg_start = false;
                    }
                    TokenTree::Punct(p) => match p.as_char() {
                        ',' if depth == 0 => at_arg_start = true,
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        _ => at_arg_start = false,
                    },
                    _ => at_arg_start = false,
                }
            }
            false
        }
        _ => false,
    }
}

/// Extract field names from a brace-delimited named-field list, noting
/// which carry `#[serde(default)]`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Scan this field's attributes for #[serde(default)] before
        // skipping the rest of the prefix (doc comments, visibility).
        let mut default = false;
        loop {
            match (tokens.get(i), tokens.get(i + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) if p.as_char() == '#' => {
                    if attr_is_serde_default(g) {
                        default = true;
                    }
                    i += 2;
                }
                _ => break,
            }
        }
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field {name}, got {other:?}")),
        }
        // Skip the type: everything until a comma at angle depth zero.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_fields(g.stream());
                i += 1;
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant, then the separating comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ----- code generation ------------------------------------------------------

const S: &str = "::serde::Serialize::to_value";
const D: &str = "::serde::Deserialize::from_value";

fn gen_serialize(name: &str, kind: &Kind) -> String {
    let body = match kind {
        Kind::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("({f:?}.to_string(), {S}(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Kind::TupleStruct(1) => format!("{S}(&self.0)"),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n).map(|i| format!("{S}(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![({vn:?}.to_string(), {S}(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> =
                                (0..*n).map(|i| format!("{S}(__f{i})")).collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!("({f:?}.to_string(), {S}({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Object(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Deserialization initializer for one named field of the source object
/// expression `src`: defaulted fields treat a missing or `Null` value as
/// `Default::default()` instead of a type error.
fn field_init(f: &Field, src: &str) -> String {
    let name = &f.name;
    if f.default {
        format!(
            "{name}: match {src}.get_field({name:?}) {{\n\
                 ::std::option::Option::None | ::std::option::Option::Some(::serde::Value::Null) => ::std::default::Default::default(),\n\
                 ::std::option::Option::Some(__fv) => {D}(__fv).map_err(|e| e.in_field({name:?}))?,\n\
             }}"
        )
    } else {
        format!(
            "{name}: {D}({src}.get_field({name:?}).unwrap_or(&::serde::Value::Null)).map_err(|e| e.in_field({name:?}))?"
        )
    }
}

fn gen_deserialize(name: &str, kind: &Kind) -> String {
    let body = match kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| field_init(f, "__v")).collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Object(_) => Ok({name} {{ {} }}),\n\
                     __other => Err(::serde::Error::expected(\"object\", __other)),\n\
                 }}",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => format!("Ok({name}({D}(__v)?))"),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n).map(|i| format!("{D}(&__items[{i}])?")).collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Array(__items) if __items.len() == {n} => Ok({name}({})),\n\
                     __other => Err(::serde::Error::expected(\"{n}-element array\", __other)),\n\
                 }}",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!("{{ let _ = __v; Ok({name}) }}"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}({D}(__inner).map_err(|e| e.in_field({vn:?}))?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> =
                                (0..*n).map(|i| format!("{D}(&__items[{i}])?")).collect();
                            Some(format!(
                                "{vn:?} => match __inner {{\n\
                                     ::serde::Value::Array(__items) if __items.len() == {n} => Ok({name}::{vn}({})),\n\
                                     __other => Err(::serde::Error::expected(\"{n}-element array\", __other)),\n\
                                 }},",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> =
                                fields.iter().map(|f| field_init(f, "__inner")).collect();
                            Some(format!(
                                "{vn:?} => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => Err(::serde::Error::custom(format!(\"unknown variant {{__other}} of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__k, __inner) = &__pairs[0];\n\
                         let _ = __inner;\n\
                         match __k.as_str() {{\n\
                             {}\n\
                             __other => Err(::serde::Error::custom(format!(\"unknown variant {{__other}} of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(::serde::Error::expected(\"externally tagged enum\", __other)),\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
