/root/repo/vendor/proptest/target/debug/deps/proptest-60daf9a6c2037339.d: src/lib.rs

/root/repo/vendor/proptest/target/debug/deps/proptest-60daf9a6c2037339: src/lib.rs

src/lib.rs:
