/root/repo/vendor/proptest/target/debug/deps/proptest-7a18442289951916.d: src/lib.rs

/root/repo/vendor/proptest/target/debug/deps/libproptest-7a18442289951916.rlib: src/lib.rs

/root/repo/vendor/proptest/target/debug/deps/libproptest-7a18442289951916.rmeta: src/lib.rs

src/lib.rs:
