//! Offline substitute for `proptest`.
//!
//! Replays the property-test workflow the workspace relies on — the
//! `proptest!` macro, range/tuple/collection/`prop_oneof!`/`prop_map`
//! strategies, regex-lite string strategies (`"[a-d]{1,3}"`), and
//! `prop_assert*` — over a deterministic seeded RNG. Differences from
//! upstream: no shrinking (failures print the full generated input
//! instead) and a fixed per-test seed derived from the test name, so
//! failures reproduce exactly by re-running the test.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Failure raised by `prop_assert*` and test bodies.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }

    /// Upstream-compatible alias.
    pub fn reject(msg: impl std::fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: per-test deterministic seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values (no shrinking in this substitute).
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()`: the full value domain of a primitive.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub trait Arbitrary: std::fmt::Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

// Integer and float ranges are strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Regex-lite string strategy: supports concatenations of literal chars
/// and `[a-z]{m,n}` / `[abc]{m,n}` character-class repetitions — the
/// shapes used in this workspace's tests. Unsupported syntax falls back
/// to emitting the pattern literally.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '[' {
            // character class
            let close = match chars[i + 1..].iter().position(|&c| c == ']') {
                Some(off) => i + 1 + off,
                None => {
                    out.push(chars[i]);
                    i += 1;
                    continue;
                }
            };
            let mut class = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    for c in lo..=hi {
                        if let Some(c) = char::from_u32(c) {
                            class.push(c);
                        }
                    }
                    j += 3;
                } else {
                    class.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            // repetition {m,n} (defaults to exactly one)
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close_rep = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|off| i + 1 + off)
                    .unwrap_or(chars.len() - 1);
                let body: String = chars[i + 1..close_rep].iter().collect();
                i = close_rep + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().unwrap_or(1),
                        n.trim().parse::<usize>().unwrap_or(1),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().unwrap_or(1);
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            if !class.is_empty() {
                let reps = rng.gen_range(min..=max);
                for _ in 0..reps {
                    out.push(class[rng.gen_range(0..class.len())]);
                }
            }
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

// Tuples of strategies are strategies over tuples.
macro_rules! impl_tuple_strategy {
    ($(($($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Weighted union used by `prop_oneof!` (uniform arm choice).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` path namespace used inside tests.
pub mod prop {
    pub use crate::collection;
}

pub mod test_runner {
    pub use crate::ProptestConfig as Config;
}

pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                lhs, rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: {:?} != {:?}",
                format!($($fmt)+),
                lhs,
                rhs
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                lhs, rhs
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The test-defining macro. Each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that samples `cases` inputs and runs the body against each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); ) => {};
    (@run ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let debug_input = format!(concat!($(stringify!($arg), " = {:?} ",)+), $(&$arg),+);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  input: {}",
                        case + 1,
                        config.cases,
                        e,
                        debug_input
                    );
                }
            }
        }
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0u8..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_and_oneof_compose(
            v in prop::collection::vec(
                prop_oneof![
                    (0u32..10).prop_map(|n| n * 2),
                    Just(99u32),
                ],
                1..8,
            )
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for x in v {
                prop_assert!(x == 99 || (x % 2 == 0 && x < 20), "x={x}");
            }
        }

        #[test]
        fn regex_lite_strings(s in "[a-d]{1,3}") {
            prop_assert!((1..=3).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='d').contains(&c)));
        }

        #[test]
        fn any_bool_and_u8(b in any::<bool>(), n in any::<u8>()) {
            let _ = (b, n);
        }
    }

    #[test]
    fn default_config_runs() {
        proptest! {
            #[test]
            fn inner(x in 0u64..5) {
                prop_assert!(x < 5);
            }
        }
        inner();
    }

    #[test]
    fn seeds_are_deterministic() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let s: &str = "[a-c]{2,4}";
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
