//! Offline substitute for `bytes`.
//!
//! `Bytes` is a reference-counted, immutable byte buffer with O(1) clone
//! and O(1) sub-slicing — the properties the VFS content layer relies on.
//! Serde support is built in (the real crate gates it behind a feature):
//! a buffer serializes as an array of byte values.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable view into a shared, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// O(1) sub-view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {lo}..{hi} out of range 0..{len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::from(v.as_slice().to_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref().iter().take(32) {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "...({}B)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl serde::Serialize for Bytes {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(
            self.as_ref()
                .iter()
                .map(|&b| serde::Value::U64(b as u64))
                .collect(),
        )
    }
}

impl serde::Deserialize for Bytes {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let bytes: Vec<u8> = Vec::<u8>::from_value(v)?;
        Ok(Bytes::from(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.clone(), b);
        assert_eq!(s.slice(..2), Bytes::from(&[2u8, 3][..]));
    }

    #[test]
    fn equality_is_by_content() {
        assert_eq!(Bytes::from(vec![1u8, 2]), Bytes::from(&[1u8, 2][..]));
        assert!(Bytes::from(vec![1u8]) != Bytes::from(vec![2u8]));
    }
}
