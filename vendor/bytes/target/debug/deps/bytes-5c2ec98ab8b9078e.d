/root/repo/vendor/bytes/target/debug/deps/bytes-5c2ec98ab8b9078e.d: src/lib.rs

/root/repo/vendor/bytes/target/debug/deps/bytes-5c2ec98ab8b9078e: src/lib.rs

src/lib.rs:
