/root/repo/vendor/bytes/target/debug/deps/bytes-36f08bf84682572d.d: src/lib.rs

/root/repo/vendor/bytes/target/debug/deps/libbytes-36f08bf84682572d.rlib: src/lib.rs

/root/repo/vendor/bytes/target/debug/deps/libbytes-36f08bf84682572d.rmeta: src/lib.rs

src/lib.rs:
