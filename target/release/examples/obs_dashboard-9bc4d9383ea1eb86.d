/root/repo/target/release/examples/obs_dashboard-9bc4d9383ea1eb86.d: examples/obs_dashboard.rs

/root/repo/target/release/examples/obs_dashboard-9bc4d9383ea1eb86: examples/obs_dashboard.rs

examples/obs_dashboard.rs:
