/root/repo/target/release/deps/copra_workloads-258dadbdf51efb6a.d: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/open_science.rs

/root/repo/target/release/deps/libcopra_workloads-258dadbdf51efb6a.rlib: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/open_science.rs

/root/repo/target/release/deps/libcopra_workloads-258dadbdf51efb6a.rmeta: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/open_science.rs

crates/workloads/src/lib.rs:
crates/workloads/src/generators.rs:
crates/workloads/src/open_science.rs:
