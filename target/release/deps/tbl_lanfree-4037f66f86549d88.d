/root/repo/target/release/deps/tbl_lanfree-4037f66f86549d88.d: crates/bench/src/bin/tbl_lanfree.rs Cargo.toml

/root/repo/target/release/deps/libtbl_lanfree-4037f66f86549d88.rmeta: crates/bench/src/bin/tbl_lanfree.rs Cargo.toml

crates/bench/src/bin/tbl_lanfree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
