/root/repo/target/release/deps/copra_core-81b50bde4ec8fad0.d: crates/core/src/lib.rs crates/core/src/jail.rs crates/core/src/migrator.rs crates/core/src/obs.rs crates/core/src/search.rs crates/core/src/shell.rs crates/core/src/syncdel.rs crates/core/src/system.rs crates/core/src/trashcan.rs Cargo.toml

/root/repo/target/release/deps/libcopra_core-81b50bde4ec8fad0.rmeta: crates/core/src/lib.rs crates/core/src/jail.rs crates/core/src/migrator.rs crates/core/src/obs.rs crates/core/src/search.rs crates/core/src/shell.rs crates/core/src/syncdel.rs crates/core/src/system.rs crates/core/src/trashcan.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/jail.rs:
crates/core/src/migrator.rs:
crates/core/src/obs.rs:
crates/core/src/search.rs:
crates/core/src/shell.rs:
crates/core/src/syncdel.rs:
crates/core/src/system.rs:
crates/core/src/trashcan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
