/root/repo/target/release/deps/tbl_fuse-e05f095d879148c0.d: crates/bench/src/bin/tbl_fuse.rs Cargo.toml

/root/repo/target/release/deps/libtbl_fuse-e05f095d879148c0.rmeta: crates/bench/src/bin/tbl_fuse.rs Cargo.toml

crates/bench/src/bin/tbl_fuse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
