/root/repo/target/release/deps/copra_obs-dfdff6e9e9467ae7.d: crates/obs/src/lib.rs crates/obs/src/events.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs Cargo.toml

/root/repo/target/release/deps/libcopra_obs-dfdff6e9e9467ae7.rmeta: crates/obs/src/lib.rs crates/obs/src/events.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/events.rs:
crates/obs/src/metrics.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
