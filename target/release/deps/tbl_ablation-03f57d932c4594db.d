/root/repo/target/release/deps/tbl_ablation-03f57d932c4594db.d: crates/bench/src/bin/tbl_ablation.rs

/root/repo/target/release/deps/tbl_ablation-03f57d932c4594db: crates/bench/src/bin/tbl_ablation.rs

crates/bench/src/bin/tbl_ablation.rs:
