/root/repo/target/release/deps/copra_fuse-f3935d4ef2363e4b.d: crates/fuselayer/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcopra_fuse-f3935d4ef2363e4b.rmeta: crates/fuselayer/src/lib.rs Cargo.toml

crates/fuselayer/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
