/root/repo/target/release/deps/bytes-38ec1faff2f37db0.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-38ec1faff2f37db0.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
