/root/repo/target/release/deps/tbl_scan-c1e645d85af370cc.d: crates/bench/src/bin/tbl_scan.rs

/root/repo/target/release/deps/tbl_scan-c1e645d85af370cc: crates/bench/src/bin/tbl_scan.rs

crates/bench/src/bin/tbl_scan.rs:
