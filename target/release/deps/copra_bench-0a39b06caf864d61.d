/root/repo/target/release/deps/copra_bench-0a39b06caf864d61.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcopra_bench-0a39b06caf864d61.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
