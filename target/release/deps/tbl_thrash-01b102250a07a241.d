/root/repo/target/release/deps/tbl_thrash-01b102250a07a241.d: crates/bench/src/bin/tbl_thrash.rs Cargo.toml

/root/repo/target/release/deps/libtbl_thrash-01b102250a07a241.rmeta: crates/bench/src/bin/tbl_thrash.rs Cargo.toml

crates/bench/src/bin/tbl_thrash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
