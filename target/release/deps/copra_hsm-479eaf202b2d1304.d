/root/repo/target/release/deps/copra_hsm-479eaf202b2d1304.d: crates/hsm/src/lib.rs crates/hsm/src/agent.rs crates/hsm/src/aggregate.rs crates/hsm/src/backup.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/object.rs crates/hsm/src/reclaim.rs crates/hsm/src/reconcile.rs crates/hsm/src/server.rs Cargo.toml

/root/repo/target/release/deps/libcopra_hsm-479eaf202b2d1304.rmeta: crates/hsm/src/lib.rs crates/hsm/src/agent.rs crates/hsm/src/aggregate.rs crates/hsm/src/backup.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/object.rs crates/hsm/src/reclaim.rs crates/hsm/src/reconcile.rs crates/hsm/src/server.rs Cargo.toml

crates/hsm/src/lib.rs:
crates/hsm/src/agent.rs:
crates/hsm/src/aggregate.rs:
crates/hsm/src/backup.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/object.rs:
crates/hsm/src/reclaim.rs:
crates/hsm/src/reconcile.rs:
crates/hsm/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
