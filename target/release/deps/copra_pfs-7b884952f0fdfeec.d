/root/repo/target/release/deps/copra_pfs-7b884952f0fdfeec.d: crates/pfs/src/lib.rs crates/pfs/src/glob.rs crates/pfs/src/hsmstate.rs crates/pfs/src/pfs.rs crates/pfs/src/policy.rs crates/pfs/src/pool.rs

/root/repo/target/release/deps/libcopra_pfs-7b884952f0fdfeec.rlib: crates/pfs/src/lib.rs crates/pfs/src/glob.rs crates/pfs/src/hsmstate.rs crates/pfs/src/pfs.rs crates/pfs/src/policy.rs crates/pfs/src/pool.rs

/root/repo/target/release/deps/libcopra_pfs-7b884952f0fdfeec.rmeta: crates/pfs/src/lib.rs crates/pfs/src/glob.rs crates/pfs/src/hsmstate.rs crates/pfs/src/pfs.rs crates/pfs/src/policy.rs crates/pfs/src/pool.rs

crates/pfs/src/lib.rs:
crates/pfs/src/glob.rs:
crates/pfs/src/hsmstate.rs:
crates/pfs/src/pfs.rs:
crates/pfs/src/policy.rs:
crates/pfs/src/pool.rs:
