/root/repo/target/release/deps/copra_metadb-23b0e8c739562144.d: crates/metadb/src/lib.rs crates/metadb/src/table.rs crates/metadb/src/tsm.rs Cargo.toml

/root/repo/target/release/deps/libcopra_metadb-23b0e8c739562144.rmeta: crates/metadb/src/lib.rs crates/metadb/src/table.rs crates/metadb/src/tsm.rs Cargo.toml

crates/metadb/src/lib.rs:
crates/metadb/src/table.rs:
crates/metadb/src/tsm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
