/root/repo/target/release/deps/copra_vfs-eb981397af269c30.d: crates/vfs/src/lib.rs crates/vfs/src/content.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs crates/vfs/src/inode.rs crates/vfs/src/path.rs Cargo.toml

/root/repo/target/release/deps/libcopra_vfs-eb981397af269c30.rmeta: crates/vfs/src/lib.rs crates/vfs/src/content.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs crates/vfs/src/inode.rs crates/vfs/src/path.rs Cargo.toml

crates/vfs/src/lib.rs:
crates/vfs/src/content.rs:
crates/vfs/src/error.rs:
crates/vfs/src/fs.rs:
crates/vfs/src/inode.rs:
crates/vfs/src/path.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
