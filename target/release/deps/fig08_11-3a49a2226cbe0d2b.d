/root/repo/target/release/deps/fig08_11-3a49a2226cbe0d2b.d: crates/bench/src/bin/fig08_11.rs

/root/repo/target/release/deps/fig08_11-3a49a2226cbe0d2b: crates/bench/src/bin/fig08_11.rs

crates/bench/src/bin/fig08_11.rs:
