/root/repo/target/release/deps/serde-d7b7694d2b10c203.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-d7b7694d2b10c203.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
