/root/repo/target/release/deps/tbl_migrator-39e79dfdac55f4ae.d: crates/bench/src/bin/tbl_migrator.rs

/root/repo/target/release/deps/tbl_migrator-39e79dfdac55f4ae: crates/bench/src/bin/tbl_migrator.rs

crates/bench/src/bin/tbl_migrator.rs:
