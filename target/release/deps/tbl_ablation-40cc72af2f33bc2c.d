/root/repo/target/release/deps/tbl_ablation-40cc72af2f33bc2c.d: crates/bench/src/bin/tbl_ablation.rs Cargo.toml

/root/repo/target/release/deps/libtbl_ablation-40cc72af2f33bc2c.rmeta: crates/bench/src/bin/tbl_ablation.rs Cargo.toml

crates/bench/src/bin/tbl_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
