/root/repo/target/release/deps/copra-45c270e08518c119.d: src/lib.rs

/root/repo/target/release/deps/libcopra-45c270e08518c119.rlib: src/lib.rs

/root/repo/target/release/deps/libcopra-45c270e08518c119.rmeta: src/lib.rs

src/lib.rs:
