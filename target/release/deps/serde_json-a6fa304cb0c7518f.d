/root/repo/target/release/deps/serde_json-a6fa304cb0c7518f.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-a6fa304cb0c7518f.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-a6fa304cb0c7518f.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
