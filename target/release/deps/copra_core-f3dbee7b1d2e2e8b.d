/root/repo/target/release/deps/copra_core-f3dbee7b1d2e2e8b.d: crates/core/src/lib.rs crates/core/src/jail.rs crates/core/src/migrator.rs crates/core/src/obs.rs crates/core/src/search.rs crates/core/src/shell.rs crates/core/src/syncdel.rs crates/core/src/system.rs crates/core/src/trashcan.rs

/root/repo/target/release/deps/libcopra_core-f3dbee7b1d2e2e8b.rlib: crates/core/src/lib.rs crates/core/src/jail.rs crates/core/src/migrator.rs crates/core/src/obs.rs crates/core/src/search.rs crates/core/src/shell.rs crates/core/src/syncdel.rs crates/core/src/system.rs crates/core/src/trashcan.rs

/root/repo/target/release/deps/libcopra_core-f3dbee7b1d2e2e8b.rmeta: crates/core/src/lib.rs crates/core/src/jail.rs crates/core/src/migrator.rs crates/core/src/obs.rs crates/core/src/search.rs crates/core/src/shell.rs crates/core/src/syncdel.rs crates/core/src/system.rs crates/core/src/trashcan.rs

crates/core/src/lib.rs:
crates/core/src/jail.rs:
crates/core/src/migrator.rs:
crates/core/src/obs.rs:
crates/core/src/search.rs:
crates/core/src/shell.rs:
crates/core/src/syncdel.rs:
crates/core/src/system.rs:
crates/core/src/trashcan.rs:
