/root/repo/target/release/deps/tbl_small_file-1fc6a43f5a543e57.d: crates/bench/src/bin/tbl_small_file.rs Cargo.toml

/root/repo/target/release/deps/libtbl_small_file-1fc6a43f5a543e57.rmeta: crates/bench/src/bin/tbl_small_file.rs Cargo.toml

crates/bench/src/bin/tbl_small_file.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
