/root/repo/target/release/deps/copra-f3365b11e07708ad.d: src/lib.rs

/root/repo/target/release/deps/libcopra-f3365b11e07708ad.rlib: src/lib.rs

/root/repo/target/release/deps/libcopra-f3365b11e07708ad.rmeta: src/lib.rs

src/lib.rs:
