/root/repo/target/release/deps/tbl_chunk-1de9dfd105f12821.d: crates/bench/src/bin/tbl_chunk.rs

/root/repo/target/release/deps/tbl_chunk-1de9dfd105f12821: crates/bench/src/bin/tbl_chunk.rs

crates/bench/src/bin/tbl_chunk.rs:
