/root/repo/target/release/deps/copra_pftool-5c2cd1b51d4ebb0d.d: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs

/root/repo/target/release/deps/libcopra_pftool-5c2cd1b51d4ebb0d.rlib: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs

/root/repo/target/release/deps/libcopra_pftool-5c2cd1b51d4ebb0d.rmeta: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs

crates/pftool/src/lib.rs:
crates/pftool/src/api.rs:
crates/pftool/src/config.rs:
crates/pftool/src/engine.rs:
crates/pftool/src/msg.rs:
crates/pftool/src/queues.rs:
crates/pftool/src/report.rs:
crates/pftool/src/view.rs:
