/root/repo/target/release/deps/copra_obs-4420136cd1afb573.d: crates/obs/src/lib.rs crates/obs/src/events.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs

/root/repo/target/release/deps/libcopra_obs-4420136cd1afb573.rlib: crates/obs/src/lib.rs crates/obs/src/events.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs

/root/repo/target/release/deps/libcopra_obs-4420136cd1afb573.rmeta: crates/obs/src/lib.rs crates/obs/src/events.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs

crates/obs/src/lib.rs:
crates/obs/src/events.rs:
crates/obs/src/metrics.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
