/root/repo/target/release/deps/tbl_small_file-977de08e28f0a67b.d: crates/bench/src/bin/tbl_small_file.rs

/root/repo/target/release/deps/tbl_small_file-977de08e28f0a67b: crates/bench/src/bin/tbl_small_file.rs

crates/bench/src/bin/tbl_small_file.rs:
