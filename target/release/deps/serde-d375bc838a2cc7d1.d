/root/repo/target/release/deps/serde-d375bc838a2cc7d1.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-d375bc838a2cc7d1.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-d375bc838a2cc7d1.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
