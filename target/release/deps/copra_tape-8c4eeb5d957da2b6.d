/root/repo/target/release/deps/copra_tape-8c4eeb5d957da2b6.d: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs Cargo.toml

/root/repo/target/release/deps/libcopra_tape-8c4eeb5d957da2b6.rmeta: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs Cargo.toml

crates/tape/src/lib.rs:
crates/tape/src/cartridge.rs:
crates/tape/src/library.rs:
crates/tape/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
