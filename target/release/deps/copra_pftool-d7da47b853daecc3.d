/root/repo/target/release/deps/copra_pftool-d7da47b853daecc3.d: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs

/root/repo/target/release/deps/libcopra_pftool-d7da47b853daecc3.rlib: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs

/root/repo/target/release/deps/libcopra_pftool-d7da47b853daecc3.rmeta: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs

crates/pftool/src/lib.rs:
crates/pftool/src/api.rs:
crates/pftool/src/config.rs:
crates/pftool/src/engine.rs:
crates/pftool/src/msg.rs:
crates/pftool/src/queues.rs:
crates/pftool/src/report.rs:
crates/pftool/src/view.rs:
