/root/repo/target/release/deps/rustc_hash-9517631e50f3a927.d: vendor/rustc-hash/src/lib.rs

/root/repo/target/release/deps/librustc_hash-9517631e50f3a927.rlib: vendor/rustc-hash/src/lib.rs

/root/repo/target/release/deps/librustc_hash-9517631e50f3a927.rmeta: vendor/rustc-hash/src/lib.rs

vendor/rustc-hash/src/lib.rs:
