/root/repo/target/release/deps/tbl_restart-e29f13cbefb601bd.d: crates/bench/src/bin/tbl_restart.rs

/root/repo/target/release/deps/tbl_restart-e29f13cbefb601bd: crates/bench/src/bin/tbl_restart.rs

crates/bench/src/bin/tbl_restart.rs:
