/root/repo/target/release/deps/copra_mpirt-9a1ffa2f3448cd1a.d: crates/mpirt/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcopra_mpirt-9a1ffa2f3448cd1a.rmeta: crates/mpirt/src/lib.rs Cargo.toml

crates/mpirt/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
