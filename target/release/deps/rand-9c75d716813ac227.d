/root/repo/target/release/deps/rand-9c75d716813ac227.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-9c75d716813ac227.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
