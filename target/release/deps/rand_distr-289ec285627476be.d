/root/repo/target/release/deps/rand_distr-289ec285627476be.d: vendor/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-289ec285627476be.rmeta: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
