/root/repo/target/release/deps/copra_tape-e32d8adacebc6253.d: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs

/root/repo/target/release/deps/libcopra_tape-e32d8adacebc6253.rlib: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs

/root/repo/target/release/deps/libcopra_tape-e32d8adacebc6253.rmeta: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs

crates/tape/src/lib.rs:
crates/tape/src/cartridge.rs:
crates/tape/src/library.rs:
crates/tape/src/timing.rs:
