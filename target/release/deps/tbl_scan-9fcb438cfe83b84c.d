/root/repo/target/release/deps/tbl_scan-9fcb438cfe83b84c.d: crates/bench/src/bin/tbl_scan.rs Cargo.toml

/root/repo/target/release/deps/libtbl_scan-9fcb438cfe83b84c.rmeta: crates/bench/src/bin/tbl_scan.rs Cargo.toml

crates/bench/src/bin/tbl_scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
