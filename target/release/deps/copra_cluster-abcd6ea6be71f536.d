/root/repo/target/release/deps/copra_cluster-abcd6ea6be71f536.d: crates/cluster/src/lib.rs crates/cluster/src/fta.rs crates/cluster/src/loadmgr.rs crates/cluster/src/moab.rs Cargo.toml

/root/repo/target/release/deps/libcopra_cluster-abcd6ea6be71f536.rmeta: crates/cluster/src/lib.rs crates/cluster/src/fta.rs crates/cluster/src/loadmgr.rs crates/cluster/src/moab.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/fta.rs:
crates/cluster/src/loadmgr.rs:
crates/cluster/src/moab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
