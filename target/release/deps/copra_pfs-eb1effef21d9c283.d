/root/repo/target/release/deps/copra_pfs-eb1effef21d9c283.d: crates/pfs/src/lib.rs crates/pfs/src/glob.rs crates/pfs/src/hsmstate.rs crates/pfs/src/pfs.rs crates/pfs/src/policy.rs crates/pfs/src/pool.rs Cargo.toml

/root/repo/target/release/deps/libcopra_pfs-eb1effef21d9c283.rmeta: crates/pfs/src/lib.rs crates/pfs/src/glob.rs crates/pfs/src/hsmstate.rs crates/pfs/src/pfs.rs crates/pfs/src/policy.rs crates/pfs/src/pool.rs Cargo.toml

crates/pfs/src/lib.rs:
crates/pfs/src/glob.rs:
crates/pfs/src/hsmstate.rs:
crates/pfs/src/pfs.rs:
crates/pfs/src/policy.rs:
crates/pfs/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
