/root/repo/target/release/deps/copra_mpirt-45e570acbed09378.d: crates/mpirt/src/lib.rs

/root/repo/target/release/deps/libcopra_mpirt-45e570acbed09378.rlib: crates/mpirt/src/lib.rs

/root/repo/target/release/deps/libcopra_mpirt-45e570acbed09378.rmeta: crates/mpirt/src/lib.rs

crates/mpirt/src/lib.rs:
