/root/repo/target/release/deps/tbl_migrator-2aa60287b6c73bc1.d: crates/bench/src/bin/tbl_migrator.rs Cargo.toml

/root/repo/target/release/deps/libtbl_migrator-2aa60287b6c73bc1.rmeta: crates/bench/src/bin/tbl_migrator.rs Cargo.toml

crates/bench/src/bin/tbl_migrator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
