/root/repo/target/release/deps/copra_fuse-75ede4f3394a0243.d: crates/fuselayer/src/lib.rs

/root/repo/target/release/deps/libcopra_fuse-75ede4f3394a0243.rlib: crates/fuselayer/src/lib.rs

/root/repo/target/release/deps/libcopra_fuse-75ede4f3394a0243.rmeta: crates/fuselayer/src/lib.rs

crates/fuselayer/src/lib.rs:
