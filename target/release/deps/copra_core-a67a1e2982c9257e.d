/root/repo/target/release/deps/copra_core-a67a1e2982c9257e.d: crates/core/src/lib.rs crates/core/src/jail.rs crates/core/src/migrator.rs crates/core/src/search.rs crates/core/src/shell.rs crates/core/src/syncdel.rs crates/core/src/system.rs crates/core/src/trashcan.rs

/root/repo/target/release/deps/libcopra_core-a67a1e2982c9257e.rlib: crates/core/src/lib.rs crates/core/src/jail.rs crates/core/src/migrator.rs crates/core/src/search.rs crates/core/src/shell.rs crates/core/src/syncdel.rs crates/core/src/system.rs crates/core/src/trashcan.rs

/root/repo/target/release/deps/libcopra_core-a67a1e2982c9257e.rmeta: crates/core/src/lib.rs crates/core/src/jail.rs crates/core/src/migrator.rs crates/core/src/search.rs crates/core/src/shell.rs crates/core/src/syncdel.rs crates/core/src/system.rs crates/core/src/trashcan.rs

crates/core/src/lib.rs:
crates/core/src/jail.rs:
crates/core/src/migrator.rs:
crates/core/src/search.rs:
crates/core/src/shell.rs:
crates/core/src/syncdel.rs:
crates/core/src/system.rs:
crates/core/src/trashcan.rs:
