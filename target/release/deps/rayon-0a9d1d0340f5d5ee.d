/root/repo/target/release/deps/rayon-0a9d1d0340f5d5ee.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-0a9d1d0340f5d5ee.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
