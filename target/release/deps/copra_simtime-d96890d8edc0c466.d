/root/repo/target/release/deps/copra_simtime-d96890d8edc0c466.d: crates/simtime/src/lib.rs crates/simtime/src/clock.rs crates/simtime/src/pool.rs crates/simtime/src/rate.rs crates/simtime/src/time.rs crates/simtime/src/timeline.rs Cargo.toml

/root/repo/target/release/deps/libcopra_simtime-d96890d8edc0c466.rmeta: crates/simtime/src/lib.rs crates/simtime/src/clock.rs crates/simtime/src/pool.rs crates/simtime/src/rate.rs crates/simtime/src/time.rs crates/simtime/src/timeline.rs Cargo.toml

crates/simtime/src/lib.rs:
crates/simtime/src/clock.rs:
crates/simtime/src/pool.rs:
crates/simtime/src/rate.rs:
crates/simtime/src/time.rs:
crates/simtime/src/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
