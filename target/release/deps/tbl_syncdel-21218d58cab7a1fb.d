/root/repo/target/release/deps/tbl_syncdel-21218d58cab7a1fb.d: crates/bench/src/bin/tbl_syncdel.rs Cargo.toml

/root/repo/target/release/deps/libtbl_syncdel-21218d58cab7a1fb.rmeta: crates/bench/src/bin/tbl_syncdel.rs Cargo.toml

crates/bench/src/bin/tbl_syncdel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
