/root/repo/target/release/deps/copra_bench-ae3287a17cba5ec0.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcopra_bench-ae3287a17cba5ec0.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcopra_bench-ae3287a17cba5ec0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
