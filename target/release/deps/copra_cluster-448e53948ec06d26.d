/root/repo/target/release/deps/copra_cluster-448e53948ec06d26.d: crates/cluster/src/lib.rs crates/cluster/src/fta.rs crates/cluster/src/loadmgr.rs crates/cluster/src/moab.rs

/root/repo/target/release/deps/libcopra_cluster-448e53948ec06d26.rlib: crates/cluster/src/lib.rs crates/cluster/src/fta.rs crates/cluster/src/loadmgr.rs crates/cluster/src/moab.rs

/root/repo/target/release/deps/libcopra_cluster-448e53948ec06d26.rmeta: crates/cluster/src/lib.rs crates/cluster/src/fta.rs crates/cluster/src/loadmgr.rs crates/cluster/src/moab.rs

crates/cluster/src/lib.rs:
crates/cluster/src/fta.rs:
crates/cluster/src/loadmgr.rs:
crates/cluster/src/moab.rs:
