/root/repo/target/release/deps/proptest-ac8b5991e2f171d9.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-ac8b5991e2f171d9.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-ac8b5991e2f171d9.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
