/root/repo/target/release/deps/copra_vfs-8e985b8f43b2bd8b.d: crates/vfs/src/lib.rs crates/vfs/src/content.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs crates/vfs/src/inode.rs crates/vfs/src/path.rs

/root/repo/target/release/deps/libcopra_vfs-8e985b8f43b2bd8b.rlib: crates/vfs/src/lib.rs crates/vfs/src/content.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs crates/vfs/src/inode.rs crates/vfs/src/path.rs

/root/repo/target/release/deps/libcopra_vfs-8e985b8f43b2bd8b.rmeta: crates/vfs/src/lib.rs crates/vfs/src/content.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs crates/vfs/src/inode.rs crates/vfs/src/path.rs

crates/vfs/src/lib.rs:
crates/vfs/src/content.rs:
crates/vfs/src/error.rs:
crates/vfs/src/fs.rs:
crates/vfs/src/inode.rs:
crates/vfs/src/path.rs:
