/root/repo/target/release/deps/bytes-0ce6a23266ba0746.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-0ce6a23266ba0746.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-0ce6a23266ba0746.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
