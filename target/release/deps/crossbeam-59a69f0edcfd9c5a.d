/root/repo/target/release/deps/crossbeam-59a69f0edcfd9c5a.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-59a69f0edcfd9c5a.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
