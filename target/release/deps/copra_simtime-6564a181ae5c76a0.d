/root/repo/target/release/deps/copra_simtime-6564a181ae5c76a0.d: crates/simtime/src/lib.rs crates/simtime/src/clock.rs crates/simtime/src/pool.rs crates/simtime/src/rate.rs crates/simtime/src/time.rs crates/simtime/src/timeline.rs

/root/repo/target/release/deps/libcopra_simtime-6564a181ae5c76a0.rlib: crates/simtime/src/lib.rs crates/simtime/src/clock.rs crates/simtime/src/pool.rs crates/simtime/src/rate.rs crates/simtime/src/time.rs crates/simtime/src/timeline.rs

/root/repo/target/release/deps/libcopra_simtime-6564a181ae5c76a0.rmeta: crates/simtime/src/lib.rs crates/simtime/src/clock.rs crates/simtime/src/pool.rs crates/simtime/src/rate.rs crates/simtime/src/time.rs crates/simtime/src/timeline.rs

crates/simtime/src/lib.rs:
crates/simtime/src/clock.rs:
crates/simtime/src/pool.rs:
crates/simtime/src/rate.rs:
crates/simtime/src/time.rs:
crates/simtime/src/timeline.rs:
