/root/repo/target/release/deps/copra_workloads-2ae4b6faf245c357.d: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/open_science.rs Cargo.toml

/root/repo/target/release/deps/libcopra_workloads-2ae4b6faf245c357.rmeta: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/open_science.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/generators.rs:
crates/workloads/src/open_science.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
