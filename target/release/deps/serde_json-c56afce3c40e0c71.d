/root/repo/target/release/deps/serde_json-c56afce3c40e0c71.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-c56afce3c40e0c71.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
