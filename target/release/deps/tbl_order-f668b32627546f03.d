/root/repo/target/release/deps/tbl_order-f668b32627546f03.d: crates/bench/src/bin/tbl_order.rs Cargo.toml

/root/repo/target/release/deps/libtbl_order-f668b32627546f03.rmeta: crates/bench/src/bin/tbl_order.rs Cargo.toml

crates/bench/src/bin/tbl_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
