/root/repo/target/release/deps/tbl_chunk-79b373f975bb9a9d.d: crates/bench/src/bin/tbl_chunk.rs Cargo.toml

/root/repo/target/release/deps/libtbl_chunk-79b373f975bb9a9d.rmeta: crates/bench/src/bin/tbl_chunk.rs Cargo.toml

crates/bench/src/bin/tbl_chunk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
