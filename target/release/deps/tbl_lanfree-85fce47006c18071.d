/root/repo/target/release/deps/tbl_lanfree-85fce47006c18071.d: crates/bench/src/bin/tbl_lanfree.rs

/root/repo/target/release/deps/tbl_lanfree-85fce47006c18071: crates/bench/src/bin/tbl_lanfree.rs

crates/bench/src/bin/tbl_lanfree.rs:
