/root/repo/target/release/deps/copra_pftool-3e2bb2ceda995eb6.d: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs Cargo.toml

/root/repo/target/release/deps/libcopra_pftool-3e2bb2ceda995eb6.rmeta: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs Cargo.toml

crates/pftool/src/lib.rs:
crates/pftool/src/api.rs:
crates/pftool/src/config.rs:
crates/pftool/src/engine.rs:
crates/pftool/src/msg.rs:
crates/pftool/src/queues.rs:
crates/pftool/src/report.rs:
crates/pftool/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
