/root/repo/target/release/deps/copra_hsm-a525cd67d43d57ea.d: crates/hsm/src/lib.rs crates/hsm/src/agent.rs crates/hsm/src/aggregate.rs crates/hsm/src/backup.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/object.rs crates/hsm/src/reclaim.rs crates/hsm/src/reconcile.rs crates/hsm/src/server.rs

/root/repo/target/release/deps/libcopra_hsm-a525cd67d43d57ea.rlib: crates/hsm/src/lib.rs crates/hsm/src/agent.rs crates/hsm/src/aggregate.rs crates/hsm/src/backup.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/object.rs crates/hsm/src/reclaim.rs crates/hsm/src/reconcile.rs crates/hsm/src/server.rs

/root/repo/target/release/deps/libcopra_hsm-a525cd67d43d57ea.rmeta: crates/hsm/src/lib.rs crates/hsm/src/agent.rs crates/hsm/src/aggregate.rs crates/hsm/src/backup.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/object.rs crates/hsm/src/reclaim.rs crates/hsm/src/reconcile.rs crates/hsm/src/server.rs

crates/hsm/src/lib.rs:
crates/hsm/src/agent.rs:
crates/hsm/src/aggregate.rs:
crates/hsm/src/backup.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/object.rs:
crates/hsm/src/reclaim.rs:
crates/hsm/src/reconcile.rs:
crates/hsm/src/server.rs:
