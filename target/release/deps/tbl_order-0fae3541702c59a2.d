/root/repo/target/release/deps/tbl_order-0fae3541702c59a2.d: crates/bench/src/bin/tbl_order.rs

/root/repo/target/release/deps/tbl_order-0fae3541702c59a2: crates/bench/src/bin/tbl_order.rs

crates/bench/src/bin/tbl_order.rs:
