/root/repo/target/release/deps/tbl_fuse-da8dd874897a9ad7.d: crates/bench/src/bin/tbl_fuse.rs

/root/repo/target/release/deps/tbl_fuse-da8dd874897a9ad7: crates/bench/src/bin/tbl_fuse.rs

crates/bench/src/bin/tbl_fuse.rs:
