/root/repo/target/release/deps/tbl_restart-a3a1fce101f158ef.d: crates/bench/src/bin/tbl_restart.rs Cargo.toml

/root/repo/target/release/deps/libtbl_restart-a3a1fce101f158ef.rmeta: crates/bench/src/bin/tbl_restart.rs Cargo.toml

crates/bench/src/bin/tbl_restart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
