/root/repo/target/release/deps/tbl_thrash-685fbc7f0ca18895.d: crates/bench/src/bin/tbl_thrash.rs

/root/repo/target/release/deps/tbl_thrash-685fbc7f0ca18895: crates/bench/src/bin/tbl_thrash.rs

crates/bench/src/bin/tbl_thrash.rs:
