/root/repo/target/release/deps/fig08_11-6ec1aeac781d0d1b.d: crates/bench/src/bin/fig08_11.rs Cargo.toml

/root/repo/target/release/deps/libfig08_11-6ec1aeac781d0d1b.rmeta: crates/bench/src/bin/fig08_11.rs Cargo.toml

crates/bench/src/bin/fig08_11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
