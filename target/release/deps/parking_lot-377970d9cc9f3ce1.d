/root/repo/target/release/deps/parking_lot-377970d9cc9f3ce1.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-377970d9cc9f3ce1.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
