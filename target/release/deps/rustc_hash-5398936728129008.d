/root/repo/target/release/deps/rustc_hash-5398936728129008.d: vendor/rustc-hash/src/lib.rs

/root/repo/target/release/deps/librustc_hash-5398936728129008.rmeta: vendor/rustc-hash/src/lib.rs

vendor/rustc-hash/src/lib.rs:
