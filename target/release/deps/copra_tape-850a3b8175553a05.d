/root/repo/target/release/deps/copra_tape-850a3b8175553a05.d: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs

/root/repo/target/release/deps/libcopra_tape-850a3b8175553a05.rlib: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs

/root/repo/target/release/deps/libcopra_tape-850a3b8175553a05.rmeta: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs

crates/tape/src/lib.rs:
crates/tape/src/cartridge.rs:
crates/tape/src/library.rs:
crates/tape/src/timing.rs:
