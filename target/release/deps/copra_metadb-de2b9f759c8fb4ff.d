/root/repo/target/release/deps/copra_metadb-de2b9f759c8fb4ff.d: crates/metadb/src/lib.rs crates/metadb/src/table.rs crates/metadb/src/tsm.rs

/root/repo/target/release/deps/libcopra_metadb-de2b9f759c8fb4ff.rlib: crates/metadb/src/lib.rs crates/metadb/src/table.rs crates/metadb/src/tsm.rs

/root/repo/target/release/deps/libcopra_metadb-de2b9f759c8fb4ff.rmeta: crates/metadb/src/lib.rs crates/metadb/src/table.rs crates/metadb/src/tsm.rs

crates/metadb/src/lib.rs:
crates/metadb/src/table.rs:
crates/metadb/src/tsm.rs:
