/root/repo/target/release/deps/tbl_syncdel-dc93533df5a947e9.d: crates/bench/src/bin/tbl_syncdel.rs

/root/repo/target/release/deps/tbl_syncdel-dc93533df5a947e9: crates/bench/src/bin/tbl_syncdel.rs

crates/bench/src/bin/tbl_syncdel.rs:
