/root/repo/target/debug/deps/fig08_11-91fdf379fc854d26.d: crates/bench/src/bin/fig08_11.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_11-91fdf379fc854d26.rmeta: crates/bench/src/bin/fig08_11.rs Cargo.toml

crates/bench/src/bin/fig08_11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
