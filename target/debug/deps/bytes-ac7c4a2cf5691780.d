/root/repo/target/debug/deps/bytes-ac7c4a2cf5691780.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-ac7c4a2cf5691780.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-ac7c4a2cf5691780.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
