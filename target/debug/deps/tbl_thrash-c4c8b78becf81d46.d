/root/repo/target/debug/deps/tbl_thrash-c4c8b78becf81d46.d: crates/bench/src/bin/tbl_thrash.rs

/root/repo/target/debug/deps/tbl_thrash-c4c8b78becf81d46: crates/bench/src/bin/tbl_thrash.rs

crates/bench/src/bin/tbl_thrash.rs:
