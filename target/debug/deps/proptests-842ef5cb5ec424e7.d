/root/repo/target/debug/deps/proptests-842ef5cb5ec424e7.d: crates/pfs/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-842ef5cb5ec424e7.rmeta: crates/pfs/tests/proptests.rs Cargo.toml

crates/pfs/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
