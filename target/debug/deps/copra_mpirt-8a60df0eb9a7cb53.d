/root/repo/target/debug/deps/copra_mpirt-8a60df0eb9a7cb53.d: crates/mpirt/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_mpirt-8a60df0eb9a7cb53.rmeta: crates/mpirt/src/lib.rs Cargo.toml

crates/mpirt/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
