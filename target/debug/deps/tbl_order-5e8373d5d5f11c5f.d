/root/repo/target/debug/deps/tbl_order-5e8373d5d5f11c5f.d: crates/bench/src/bin/tbl_order.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_order-5e8373d5d5f11c5f.rmeta: crates/bench/src/bin/tbl_order.rs Cargo.toml

crates/bench/src/bin/tbl_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
