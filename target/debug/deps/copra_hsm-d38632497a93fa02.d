/root/repo/target/debug/deps/copra_hsm-d38632497a93fa02.d: crates/hsm/src/lib.rs crates/hsm/src/agent.rs crates/hsm/src/aggregate.rs crates/hsm/src/backup.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/object.rs crates/hsm/src/reclaim.rs crates/hsm/src/reconcile.rs crates/hsm/src/server.rs

/root/repo/target/debug/deps/copra_hsm-d38632497a93fa02: crates/hsm/src/lib.rs crates/hsm/src/agent.rs crates/hsm/src/aggregate.rs crates/hsm/src/backup.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/object.rs crates/hsm/src/reclaim.rs crates/hsm/src/reconcile.rs crates/hsm/src/server.rs

crates/hsm/src/lib.rs:
crates/hsm/src/agent.rs:
crates/hsm/src/aggregate.rs:
crates/hsm/src/backup.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/object.rs:
crates/hsm/src/reclaim.rs:
crates/hsm/src/reconcile.rs:
crates/hsm/src/server.rs:
