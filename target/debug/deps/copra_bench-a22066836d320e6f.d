/root/repo/target/debug/deps/copra_bench-a22066836d320e6f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcopra_bench-a22066836d320e6f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcopra_bench-a22066836d320e6f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
