/root/repo/target/debug/deps/tbl_chunk-eaf8f77d0be17ba8.d: crates/bench/src/bin/tbl_chunk.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_chunk-eaf8f77d0be17ba8.rmeta: crates/bench/src/bin/tbl_chunk.rs Cargo.toml

crates/bench/src/bin/tbl_chunk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
