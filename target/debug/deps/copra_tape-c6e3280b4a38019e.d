/root/repo/target/debug/deps/copra_tape-c6e3280b4a38019e.d: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_tape-c6e3280b4a38019e.rmeta: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs Cargo.toml

crates/tape/src/lib.rs:
crates/tape/src/cartridge.rs:
crates/tape/src/library.rs:
crates/tape/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
