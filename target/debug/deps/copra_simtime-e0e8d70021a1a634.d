/root/repo/target/debug/deps/copra_simtime-e0e8d70021a1a634.d: crates/simtime/src/lib.rs crates/simtime/src/clock.rs crates/simtime/src/pool.rs crates/simtime/src/rate.rs crates/simtime/src/time.rs crates/simtime/src/timeline.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_simtime-e0e8d70021a1a634.rmeta: crates/simtime/src/lib.rs crates/simtime/src/clock.rs crates/simtime/src/pool.rs crates/simtime/src/rate.rs crates/simtime/src/time.rs crates/simtime/src/timeline.rs Cargo.toml

crates/simtime/src/lib.rs:
crates/simtime/src/clock.rs:
crates/simtime/src/pool.rs:
crates/simtime/src/rate.rs:
crates/simtime/src/time.rs:
crates/simtime/src/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
