/root/repo/target/debug/deps/proptests-081c5ebe5bb64a4c.d: crates/simtime/tests/proptests.rs

/root/repo/target/debug/deps/proptests-081c5ebe5bb64a4c: crates/simtime/tests/proptests.rs

crates/simtime/tests/proptests.rs:
