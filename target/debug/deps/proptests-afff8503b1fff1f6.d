/root/repo/target/debug/deps/proptests-afff8503b1fff1f6.d: crates/hsm/tests/proptests.rs

/root/repo/target/debug/deps/proptests-afff8503b1fff1f6: crates/hsm/tests/proptests.rs

crates/hsm/tests/proptests.rs:
