/root/repo/target/debug/deps/tbl_small_file-1c59dc74c8c30918.d: crates/bench/src/bin/tbl_small_file.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_small_file-1c59dc74c8c30918.rmeta: crates/bench/src/bin/tbl_small_file.rs Cargo.toml

crates/bench/src/bin/tbl_small_file.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
