/root/repo/target/debug/deps/tbl_restart-a6a1015b300de3af.d: crates/bench/src/bin/tbl_restart.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_restart-a6a1015b300de3af.rmeta: crates/bench/src/bin/tbl_restart.rs Cargo.toml

crates/bench/src/bin/tbl_restart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
