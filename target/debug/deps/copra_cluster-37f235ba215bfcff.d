/root/repo/target/debug/deps/copra_cluster-37f235ba215bfcff.d: crates/cluster/src/lib.rs crates/cluster/src/fta.rs crates/cluster/src/loadmgr.rs crates/cluster/src/moab.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_cluster-37f235ba215bfcff.rmeta: crates/cluster/src/lib.rs crates/cluster/src/fta.rs crates/cluster/src/loadmgr.rs crates/cluster/src/moab.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/fta.rs:
crates/cluster/src/loadmgr.rs:
crates/cluster/src/moab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
