/root/repo/target/debug/deps/tbl_lanfree-fb4687c8a66e92dd.d: crates/bench/src/bin/tbl_lanfree.rs

/root/repo/target/debug/deps/tbl_lanfree-fb4687c8a66e92dd: crates/bench/src/bin/tbl_lanfree.rs

crates/bench/src/bin/tbl_lanfree.rs:
