/root/repo/target/debug/deps/serde_json-ef7912d03b856670.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-ef7912d03b856670.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-ef7912d03b856670.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
