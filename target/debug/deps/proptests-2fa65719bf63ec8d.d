/root/repo/target/debug/deps/proptests-2fa65719bf63ec8d.d: crates/pfs/tests/proptests.rs

/root/repo/target/debug/deps/proptests-2fa65719bf63ec8d: crates/pfs/tests/proptests.rs

crates/pfs/tests/proptests.rs:
