/root/repo/target/debug/deps/copra_bench-244d20b64119d038.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/copra_bench-244d20b64119d038: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
