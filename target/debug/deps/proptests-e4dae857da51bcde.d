/root/repo/target/debug/deps/proptests-e4dae857da51bcde.d: crates/metadb/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-e4dae857da51bcde.rmeta: crates/metadb/tests/proptests.rs Cargo.toml

crates/metadb/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
