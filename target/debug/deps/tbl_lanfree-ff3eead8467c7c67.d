/root/repo/target/debug/deps/tbl_lanfree-ff3eead8467c7c67.d: crates/bench/src/bin/tbl_lanfree.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_lanfree-ff3eead8467c7c67.rmeta: crates/bench/src/bin/tbl_lanfree.rs Cargo.toml

crates/bench/src/bin/tbl_lanfree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
