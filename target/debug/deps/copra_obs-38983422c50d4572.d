/root/repo/target/debug/deps/copra_obs-38983422c50d4572.d: crates/obs/src/lib.rs crates/obs/src/events.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs

/root/repo/target/debug/deps/copra_obs-38983422c50d4572: crates/obs/src/lib.rs crates/obs/src/events.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs

crates/obs/src/lib.rs:
crates/obs/src/events.rs:
crates/obs/src/metrics.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
