/root/repo/target/debug/deps/tbl_syncdel-731ef75e8d6c80c9.d: crates/bench/src/bin/tbl_syncdel.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_syncdel-731ef75e8d6c80c9.rmeta: crates/bench/src/bin/tbl_syncdel.rs Cargo.toml

crates/bench/src/bin/tbl_syncdel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
