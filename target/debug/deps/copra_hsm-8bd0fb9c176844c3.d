/root/repo/target/debug/deps/copra_hsm-8bd0fb9c176844c3.d: crates/hsm/src/lib.rs crates/hsm/src/agent.rs crates/hsm/src/aggregate.rs crates/hsm/src/backup.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/object.rs crates/hsm/src/reclaim.rs crates/hsm/src/reconcile.rs crates/hsm/src/server.rs

/root/repo/target/debug/deps/libcopra_hsm-8bd0fb9c176844c3.rlib: crates/hsm/src/lib.rs crates/hsm/src/agent.rs crates/hsm/src/aggregate.rs crates/hsm/src/backup.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/object.rs crates/hsm/src/reclaim.rs crates/hsm/src/reconcile.rs crates/hsm/src/server.rs

/root/repo/target/debug/deps/libcopra_hsm-8bd0fb9c176844c3.rmeta: crates/hsm/src/lib.rs crates/hsm/src/agent.rs crates/hsm/src/aggregate.rs crates/hsm/src/backup.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/object.rs crates/hsm/src/reclaim.rs crates/hsm/src/reconcile.rs crates/hsm/src/server.rs

crates/hsm/src/lib.rs:
crates/hsm/src/agent.rs:
crates/hsm/src/aggregate.rs:
crates/hsm/src/backup.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/object.rs:
crates/hsm/src/reclaim.rs:
crates/hsm/src/reconcile.rs:
crates/hsm/src/server.rs:
