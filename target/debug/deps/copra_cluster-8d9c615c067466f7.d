/root/repo/target/debug/deps/copra_cluster-8d9c615c067466f7.d: crates/cluster/src/lib.rs crates/cluster/src/fta.rs crates/cluster/src/loadmgr.rs crates/cluster/src/moab.rs

/root/repo/target/debug/deps/libcopra_cluster-8d9c615c067466f7.rlib: crates/cluster/src/lib.rs crates/cluster/src/fta.rs crates/cluster/src/loadmgr.rs crates/cluster/src/moab.rs

/root/repo/target/debug/deps/libcopra_cluster-8d9c615c067466f7.rmeta: crates/cluster/src/lib.rs crates/cluster/src/fta.rs crates/cluster/src/loadmgr.rs crates/cluster/src/moab.rs

crates/cluster/src/lib.rs:
crates/cluster/src/fta.rs:
crates/cluster/src/loadmgr.rs:
crates/cluster/src/moab.rs:
