/root/repo/target/debug/deps/copra_mpirt-7eb818b51f4e4ffd.d: crates/mpirt/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_mpirt-7eb818b51f4e4ffd.rmeta: crates/mpirt/src/lib.rs Cargo.toml

crates/mpirt/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
