/root/repo/target/debug/deps/tbl_scan-afbad8bd0d4736bf.d: crates/bench/src/bin/tbl_scan.rs

/root/repo/target/debug/deps/tbl_scan-afbad8bd0d4736bf: crates/bench/src/bin/tbl_scan.rs

crates/bench/src/bin/tbl_scan.rs:
