/root/repo/target/debug/deps/tbl_small_file-db27890a9957046b.d: crates/bench/src/bin/tbl_small_file.rs

/root/repo/target/debug/deps/tbl_small_file-db27890a9957046b: crates/bench/src/bin/tbl_small_file.rs

crates/bench/src/bin/tbl_small_file.rs:
