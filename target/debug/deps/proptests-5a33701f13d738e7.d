/root/repo/target/debug/deps/proptests-5a33701f13d738e7.d: crates/pftool/tests/proptests.rs

/root/repo/target/debug/deps/proptests-5a33701f13d738e7: crates/pftool/tests/proptests.rs

crates/pftool/tests/proptests.rs:
