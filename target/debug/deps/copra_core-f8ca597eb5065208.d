/root/repo/target/debug/deps/copra_core-f8ca597eb5065208.d: crates/core/src/lib.rs crates/core/src/jail.rs crates/core/src/migrator.rs crates/core/src/obs.rs crates/core/src/search.rs crates/core/src/shell.rs crates/core/src/syncdel.rs crates/core/src/system.rs crates/core/src/trashcan.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_core-f8ca597eb5065208.rmeta: crates/core/src/lib.rs crates/core/src/jail.rs crates/core/src/migrator.rs crates/core/src/obs.rs crates/core/src/search.rs crates/core/src/shell.rs crates/core/src/syncdel.rs crates/core/src/system.rs crates/core/src/trashcan.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/jail.rs:
crates/core/src/migrator.rs:
crates/core/src/obs.rs:
crates/core/src/search.rs:
crates/core/src/shell.rs:
crates/core/src/syncdel.rs:
crates/core/src/system.rs:
crates/core/src/trashcan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
