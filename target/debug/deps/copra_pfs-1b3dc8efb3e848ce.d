/root/repo/target/debug/deps/copra_pfs-1b3dc8efb3e848ce.d: crates/pfs/src/lib.rs crates/pfs/src/glob.rs crates/pfs/src/hsmstate.rs crates/pfs/src/pfs.rs crates/pfs/src/policy.rs crates/pfs/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_pfs-1b3dc8efb3e848ce.rmeta: crates/pfs/src/lib.rs crates/pfs/src/glob.rs crates/pfs/src/hsmstate.rs crates/pfs/src/pfs.rs crates/pfs/src/policy.rs crates/pfs/src/pool.rs Cargo.toml

crates/pfs/src/lib.rs:
crates/pfs/src/glob.rs:
crates/pfs/src/hsmstate.rs:
crates/pfs/src/pfs.rs:
crates/pfs/src/policy.rs:
crates/pfs/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
