/root/repo/target/debug/deps/copra_workloads-63d7f071d205d96a.d: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/open_science.rs

/root/repo/target/debug/deps/libcopra_workloads-63d7f071d205d96a.rlib: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/open_science.rs

/root/repo/target/debug/deps/libcopra_workloads-63d7f071d205d96a.rmeta: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/open_science.rs

crates/workloads/src/lib.rs:
crates/workloads/src/generators.rs:
crates/workloads/src/open_science.rs:
