/root/repo/target/debug/deps/tbl_restart-8f21b444f0280aad.d: crates/bench/src/bin/tbl_restart.rs

/root/repo/target/debug/deps/tbl_restart-8f21b444f0280aad: crates/bench/src/bin/tbl_restart.rs

crates/bench/src/bin/tbl_restart.rs:
