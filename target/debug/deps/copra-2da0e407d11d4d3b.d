/root/repo/target/debug/deps/copra-2da0e407d11d4d3b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcopra-2da0e407d11d4d3b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
