/root/repo/target/debug/deps/tbl_ablation-dc1b0f59898241d2.d: crates/bench/src/bin/tbl_ablation.rs

/root/repo/target/debug/deps/tbl_ablation-dc1b0f59898241d2: crates/bench/src/bin/tbl_ablation.rs

crates/bench/src/bin/tbl_ablation.rs:
