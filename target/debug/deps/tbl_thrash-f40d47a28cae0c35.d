/root/repo/target/debug/deps/tbl_thrash-f40d47a28cae0c35.d: crates/bench/src/bin/tbl_thrash.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_thrash-f40d47a28cae0c35.rmeta: crates/bench/src/bin/tbl_thrash.rs Cargo.toml

crates/bench/src/bin/tbl_thrash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
