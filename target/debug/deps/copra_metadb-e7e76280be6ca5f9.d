/root/repo/target/debug/deps/copra_metadb-e7e76280be6ca5f9.d: crates/metadb/src/lib.rs crates/metadb/src/table.rs crates/metadb/src/tsm.rs

/root/repo/target/debug/deps/libcopra_metadb-e7e76280be6ca5f9.rlib: crates/metadb/src/lib.rs crates/metadb/src/table.rs crates/metadb/src/tsm.rs

/root/repo/target/debug/deps/libcopra_metadb-e7e76280be6ca5f9.rmeta: crates/metadb/src/lib.rs crates/metadb/src/table.rs crates/metadb/src/tsm.rs

crates/metadb/src/lib.rs:
crates/metadb/src/table.rs:
crates/metadb/src/tsm.rs:
