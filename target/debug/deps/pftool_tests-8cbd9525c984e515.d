/root/repo/target/debug/deps/pftool_tests-8cbd9525c984e515.d: crates/pftool/tests/pftool_tests.rs

/root/repo/target/debug/deps/pftool_tests-8cbd9525c984e515: crates/pftool/tests/pftool_tests.rs

crates/pftool/tests/pftool_tests.rs:
