/root/repo/target/debug/deps/copra_pftool-af2cb6b3e7aeeb46.d: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs

/root/repo/target/debug/deps/copra_pftool-af2cb6b3e7aeeb46: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs

crates/pftool/src/lib.rs:
crates/pftool/src/api.rs:
crates/pftool/src/config.rs:
crates/pftool/src/engine.rs:
crates/pftool/src/msg.rs:
crates/pftool/src/queues.rs:
crates/pftool/src/report.rs:
crates/pftool/src/view.rs:
