/root/repo/target/debug/deps/pftool_tests-847de35c3cafa541.d: crates/pftool/tests/pftool_tests.rs Cargo.toml

/root/repo/target/debug/deps/libpftool_tests-847de35c3cafa541.rmeta: crates/pftool/tests/pftool_tests.rs Cargo.toml

crates/pftool/tests/pftool_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
