/root/repo/target/debug/deps/concurrency-24e1a3d9c8340b02.d: crates/cluster/tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-24e1a3d9c8340b02.rmeta: crates/cluster/tests/concurrency.rs Cargo.toml

crates/cluster/tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
