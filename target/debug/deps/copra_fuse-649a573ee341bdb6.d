/root/repo/target/debug/deps/copra_fuse-649a573ee341bdb6.d: crates/fuselayer/src/lib.rs

/root/repo/target/debug/deps/copra_fuse-649a573ee341bdb6: crates/fuselayer/src/lib.rs

crates/fuselayer/src/lib.rs:
