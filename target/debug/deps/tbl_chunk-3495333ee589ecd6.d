/root/repo/target/debug/deps/tbl_chunk-3495333ee589ecd6.d: crates/bench/src/bin/tbl_chunk.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_chunk-3495333ee589ecd6.rmeta: crates/bench/src/bin/tbl_chunk.rs Cargo.toml

crates/bench/src/bin/tbl_chunk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
