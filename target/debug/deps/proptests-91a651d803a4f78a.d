/root/repo/target/debug/deps/proptests-91a651d803a4f78a.d: crates/metadb/tests/proptests.rs

/root/repo/target/debug/deps/proptests-91a651d803a4f78a: crates/metadb/tests/proptests.rs

crates/metadb/tests/proptests.rs:
