/root/repo/target/debug/deps/tbl_restart-fb410bab84a1d4c7.d: crates/bench/src/bin/tbl_restart.rs

/root/repo/target/debug/deps/tbl_restart-fb410bab84a1d4c7: crates/bench/src/bin/tbl_restart.rs

crates/bench/src/bin/tbl_restart.rs:
