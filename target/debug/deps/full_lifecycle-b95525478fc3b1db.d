/root/repo/target/debug/deps/full_lifecycle-b95525478fc3b1db.d: tests/full_lifecycle.rs

/root/repo/target/debug/deps/full_lifecycle-b95525478fc3b1db: tests/full_lifecycle.rs

tests/full_lifecycle.rs:
