/root/repo/target/debug/deps/copra_obs-f84e42573f5846bd.d: crates/obs/src/lib.rs crates/obs/src/events.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_obs-f84e42573f5846bd.rmeta: crates/obs/src/lib.rs crates/obs/src/events.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/events.rs:
crates/obs/src/metrics.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
