/root/repo/target/debug/deps/copra_tape-d2887531fb332438.d: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs

/root/repo/target/debug/deps/copra_tape-d2887531fb332438: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs

crates/tape/src/lib.rs:
crates/tape/src/cartridge.rs:
crates/tape/src/library.rs:
crates/tape/src/timing.rs:
