/root/repo/target/debug/deps/tbl_syncdel-bde5beed673eeb30.d: crates/bench/src/bin/tbl_syncdel.rs

/root/repo/target/debug/deps/tbl_syncdel-bde5beed673eeb30: crates/bench/src/bin/tbl_syncdel.rs

crates/bench/src/bin/tbl_syncdel.rs:
