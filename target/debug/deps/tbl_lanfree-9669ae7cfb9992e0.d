/root/repo/target/debug/deps/tbl_lanfree-9669ae7cfb9992e0.d: crates/bench/src/bin/tbl_lanfree.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_lanfree-9669ae7cfb9992e0.rmeta: crates/bench/src/bin/tbl_lanfree.rs Cargo.toml

crates/bench/src/bin/tbl_lanfree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
