/root/repo/target/debug/deps/tbl_migrator-92aab531e5798362.d: crates/bench/src/bin/tbl_migrator.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_migrator-92aab531e5798362.rmeta: crates/bench/src/bin/tbl_migrator.rs Cargo.toml

crates/bench/src/bin/tbl_migrator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
