/root/repo/target/debug/deps/copra_fuse-dd8bcae2c2e142c3.d: crates/fuselayer/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_fuse-dd8bcae2c2e142c3.rmeta: crates/fuselayer/src/lib.rs Cargo.toml

crates/fuselayer/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
