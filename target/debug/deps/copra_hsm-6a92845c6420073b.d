/root/repo/target/debug/deps/copra_hsm-6a92845c6420073b.d: crates/hsm/src/lib.rs crates/hsm/src/agent.rs crates/hsm/src/aggregate.rs crates/hsm/src/backup.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/object.rs crates/hsm/src/reclaim.rs crates/hsm/src/reconcile.rs crates/hsm/src/server.rs

/root/repo/target/debug/deps/libcopra_hsm-6a92845c6420073b.rlib: crates/hsm/src/lib.rs crates/hsm/src/agent.rs crates/hsm/src/aggregate.rs crates/hsm/src/backup.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/object.rs crates/hsm/src/reclaim.rs crates/hsm/src/reconcile.rs crates/hsm/src/server.rs

/root/repo/target/debug/deps/libcopra_hsm-6a92845c6420073b.rmeta: crates/hsm/src/lib.rs crates/hsm/src/agent.rs crates/hsm/src/aggregate.rs crates/hsm/src/backup.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/object.rs crates/hsm/src/reclaim.rs crates/hsm/src/reconcile.rs crates/hsm/src/server.rs

crates/hsm/src/lib.rs:
crates/hsm/src/agent.rs:
crates/hsm/src/aggregate.rs:
crates/hsm/src/backup.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/object.rs:
crates/hsm/src/reclaim.rs:
crates/hsm/src/reconcile.rs:
crates/hsm/src/server.rs:
