/root/repo/target/debug/deps/copra_pftool-58d56a4210e50a2f.d: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_pftool-58d56a4210e50a2f.rmeta: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs Cargo.toml

crates/pftool/src/lib.rs:
crates/pftool/src/api.rs:
crates/pftool/src/config.rs:
crates/pftool/src/engine.rs:
crates/pftool/src/msg.rs:
crates/pftool/src/queues.rs:
crates/pftool/src/report.rs:
crates/pftool/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
