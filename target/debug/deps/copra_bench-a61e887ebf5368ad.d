/root/repo/target/debug/deps/copra_bench-a61e887ebf5368ad.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/copra_bench-a61e887ebf5368ad: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
