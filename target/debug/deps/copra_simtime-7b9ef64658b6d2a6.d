/root/repo/target/debug/deps/copra_simtime-7b9ef64658b6d2a6.d: crates/simtime/src/lib.rs crates/simtime/src/clock.rs crates/simtime/src/pool.rs crates/simtime/src/rate.rs crates/simtime/src/time.rs crates/simtime/src/timeline.rs

/root/repo/target/debug/deps/libcopra_simtime-7b9ef64658b6d2a6.rlib: crates/simtime/src/lib.rs crates/simtime/src/clock.rs crates/simtime/src/pool.rs crates/simtime/src/rate.rs crates/simtime/src/time.rs crates/simtime/src/timeline.rs

/root/repo/target/debug/deps/libcopra_simtime-7b9ef64658b6d2a6.rmeta: crates/simtime/src/lib.rs crates/simtime/src/clock.rs crates/simtime/src/pool.rs crates/simtime/src/rate.rs crates/simtime/src/time.rs crates/simtime/src/timeline.rs

crates/simtime/src/lib.rs:
crates/simtime/src/clock.rs:
crates/simtime/src/pool.rs:
crates/simtime/src/rate.rs:
crates/simtime/src/time.rs:
crates/simtime/src/timeline.rs:
