/root/repo/target/debug/deps/tbl_migrator-22e4f534ed01ce68.d: crates/bench/src/bin/tbl_migrator.rs

/root/repo/target/debug/deps/tbl_migrator-22e4f534ed01ce68: crates/bench/src/bin/tbl_migrator.rs

crates/bench/src/bin/tbl_migrator.rs:
