/root/repo/target/debug/deps/proptests-684212bb075bc6e6.d: crates/tape/tests/proptests.rs

/root/repo/target/debug/deps/proptests-684212bb075bc6e6: crates/tape/tests/proptests.rs

crates/tape/tests/proptests.rs:
