/root/repo/target/debug/deps/stress-76f6580d82c36984.d: crates/mpirt/tests/stress.rs

/root/repo/target/debug/deps/stress-76f6580d82c36984: crates/mpirt/tests/stress.rs

crates/mpirt/tests/stress.rs:
