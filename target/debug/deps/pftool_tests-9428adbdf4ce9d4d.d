/root/repo/target/debug/deps/pftool_tests-9428adbdf4ce9d4d.d: crates/pftool/tests/pftool_tests.rs

/root/repo/target/debug/deps/pftool_tests-9428adbdf4ce9d4d: crates/pftool/tests/pftool_tests.rs

crates/pftool/tests/pftool_tests.rs:
