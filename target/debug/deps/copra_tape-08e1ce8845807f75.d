/root/repo/target/debug/deps/copra_tape-08e1ce8845807f75.d: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs

/root/repo/target/debug/deps/libcopra_tape-08e1ce8845807f75.rlib: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs

/root/repo/target/debug/deps/libcopra_tape-08e1ce8845807f75.rmeta: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs

crates/tape/src/lib.rs:
crates/tape/src/cartridge.rs:
crates/tape/src/library.rs:
crates/tape/src/timing.rs:
