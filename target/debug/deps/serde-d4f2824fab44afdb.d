/root/repo/target/debug/deps/serde-d4f2824fab44afdb.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-d4f2824fab44afdb.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
