/root/repo/target/debug/deps/proptests-2b8c66989b713753.d: crates/simtime/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-2b8c66989b713753.rmeta: crates/simtime/tests/proptests.rs Cargo.toml

crates/simtime/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
