/root/repo/target/debug/deps/bytes-42c2536e6e9c33c5.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-42c2536e6e9c33c5.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
