/root/repo/target/debug/deps/copra_metadb-f2abec81e314c7c9.d: crates/metadb/src/lib.rs crates/metadb/src/table.rs crates/metadb/src/tsm.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_metadb-f2abec81e314c7c9.rmeta: crates/metadb/src/lib.rs crates/metadb/src/table.rs crates/metadb/src/tsm.rs Cargo.toml

crates/metadb/src/lib.rs:
crates/metadb/src/table.rs:
crates/metadb/src/tsm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
