/root/repo/target/debug/deps/copra_vfs-b1fa09d4f562b3ca.d: crates/vfs/src/lib.rs crates/vfs/src/content.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs crates/vfs/src/inode.rs crates/vfs/src/path.rs

/root/repo/target/debug/deps/libcopra_vfs-b1fa09d4f562b3ca.rlib: crates/vfs/src/lib.rs crates/vfs/src/content.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs crates/vfs/src/inode.rs crates/vfs/src/path.rs

/root/repo/target/debug/deps/libcopra_vfs-b1fa09d4f562b3ca.rmeta: crates/vfs/src/lib.rs crates/vfs/src/content.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs crates/vfs/src/inode.rs crates/vfs/src/path.rs

crates/vfs/src/lib.rs:
crates/vfs/src/content.rs:
crates/vfs/src/error.rs:
crates/vfs/src/fs.rs:
crates/vfs/src/inode.rs:
crates/vfs/src/path.rs:
