/root/repo/target/debug/deps/observability-ab80852a56fb9690.d: tests/observability.rs

/root/repo/target/debug/deps/observability-ab80852a56fb9690: tests/observability.rs

tests/observability.rs:
