/root/repo/target/debug/deps/copra_bench-ce8f0639066c5081.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcopra_bench-ce8f0639066c5081.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcopra_bench-ce8f0639066c5081.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
