/root/repo/target/debug/deps/tbl_fuse-35b9bb6f69fe985b.d: crates/bench/src/bin/tbl_fuse.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_fuse-35b9bb6f69fe985b.rmeta: crates/bench/src/bin/tbl_fuse.rs Cargo.toml

crates/bench/src/bin/tbl_fuse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
