/root/repo/target/debug/deps/copra_bench-b3583dc3c4639f36.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_bench-b3583dc3c4639f36.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
