/root/repo/target/debug/deps/copra_hsm-3d1ba8f7993f8d00.d: crates/hsm/src/lib.rs crates/hsm/src/agent.rs crates/hsm/src/aggregate.rs crates/hsm/src/backup.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/object.rs crates/hsm/src/reclaim.rs crates/hsm/src/reconcile.rs crates/hsm/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_hsm-3d1ba8f7993f8d00.rmeta: crates/hsm/src/lib.rs crates/hsm/src/agent.rs crates/hsm/src/aggregate.rs crates/hsm/src/backup.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/object.rs crates/hsm/src/reclaim.rs crates/hsm/src/reconcile.rs crates/hsm/src/server.rs Cargo.toml

crates/hsm/src/lib.rs:
crates/hsm/src/agent.rs:
crates/hsm/src/aggregate.rs:
crates/hsm/src/backup.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/object.rs:
crates/hsm/src/reclaim.rs:
crates/hsm/src/reconcile.rs:
crates/hsm/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
