/root/repo/target/debug/deps/proptests-3026be4ef59aeb9a.d: crates/tape/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-3026be4ef59aeb9a.rmeta: crates/tape/tests/proptests.rs Cargo.toml

crates/tape/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
