/root/repo/target/debug/deps/proptests-4a92081ac2bb05df.d: crates/vfs/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4a92081ac2bb05df: crates/vfs/tests/proptests.rs

crates/vfs/tests/proptests.rs:
