/root/repo/target/debug/deps/fig08_11-136bcfaf3bea0526.d: crates/bench/src/bin/fig08_11.rs

/root/repo/target/debug/deps/fig08_11-136bcfaf3bea0526: crates/bench/src/bin/fig08_11.rs

crates/bench/src/bin/fig08_11.rs:
