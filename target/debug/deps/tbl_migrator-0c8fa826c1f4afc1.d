/root/repo/target/debug/deps/tbl_migrator-0c8fa826c1f4afc1.d: crates/bench/src/bin/tbl_migrator.rs

/root/repo/target/debug/deps/tbl_migrator-0c8fa826c1f4afc1: crates/bench/src/bin/tbl_migrator.rs

crates/bench/src/bin/tbl_migrator.rs:
