/root/repo/target/debug/deps/copra-4dd3deaebe9ad35f.d: src/lib.rs

/root/repo/target/debug/deps/libcopra-4dd3deaebe9ad35f.rlib: src/lib.rs

/root/repo/target/debug/deps/libcopra-4dd3deaebe9ad35f.rmeta: src/lib.rs

src/lib.rs:
