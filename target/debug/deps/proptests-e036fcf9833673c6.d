/root/repo/target/debug/deps/proptests-e036fcf9833673c6.d: crates/pftool/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e036fcf9833673c6: crates/pftool/tests/proptests.rs

crates/pftool/tests/proptests.rs:
