/root/repo/target/debug/deps/proptests-5c4eb62bfb10502d.d: crates/pftool/tests/proptests.rs

/root/repo/target/debug/deps/proptests-5c4eb62bfb10502d: crates/pftool/tests/proptests.rs

crates/pftool/tests/proptests.rs:
