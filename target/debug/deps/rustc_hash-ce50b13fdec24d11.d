/root/repo/target/debug/deps/rustc_hash-ce50b13fdec24d11.d: vendor/rustc-hash/src/lib.rs

/root/repo/target/debug/deps/librustc_hash-ce50b13fdec24d11.rlib: vendor/rustc-hash/src/lib.rs

/root/repo/target/debug/deps/librustc_hash-ce50b13fdec24d11.rmeta: vendor/rustc-hash/src/lib.rs

vendor/rustc-hash/src/lib.rs:
