/root/repo/target/debug/deps/pftool_tests-1978458bfda6380d.d: crates/pftool/tests/pftool_tests.rs

/root/repo/target/debug/deps/pftool_tests-1978458bfda6380d: crates/pftool/tests/pftool_tests.rs

crates/pftool/tests/pftool_tests.rs:
