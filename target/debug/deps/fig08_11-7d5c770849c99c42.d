/root/repo/target/debug/deps/fig08_11-7d5c770849c99c42.d: crates/bench/src/bin/fig08_11.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_11-7d5c770849c99c42.rmeta: crates/bench/src/bin/fig08_11.rs Cargo.toml

crates/bench/src/bin/fig08_11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
