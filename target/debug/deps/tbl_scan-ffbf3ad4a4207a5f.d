/root/repo/target/debug/deps/tbl_scan-ffbf3ad4a4207a5f.d: crates/bench/src/bin/tbl_scan.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_scan-ffbf3ad4a4207a5f.rmeta: crates/bench/src/bin/tbl_scan.rs Cargo.toml

crates/bench/src/bin/tbl_scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
