/root/repo/target/debug/deps/serde-32936bd65bcc9895.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-32936bd65bcc9895.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-32936bd65bcc9895.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
