/root/repo/target/debug/deps/tbl_syncdel-5e580ced9a8a8a8d.d: crates/bench/src/bin/tbl_syncdel.rs

/root/repo/target/debug/deps/tbl_syncdel-5e580ced9a8a8a8d: crates/bench/src/bin/tbl_syncdel.rs

crates/bench/src/bin/tbl_syncdel.rs:
