/root/repo/target/debug/deps/tbl_chunk-86570ac764269b3f.d: crates/bench/src/bin/tbl_chunk.rs

/root/repo/target/debug/deps/tbl_chunk-86570ac764269b3f: crates/bench/src/bin/tbl_chunk.rs

crates/bench/src/bin/tbl_chunk.rs:
