/root/repo/target/debug/deps/concurrency-d63c15737fdc498f.d: crates/cluster/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-d63c15737fdc498f: crates/cluster/tests/concurrency.rs

crates/cluster/tests/concurrency.rs:
