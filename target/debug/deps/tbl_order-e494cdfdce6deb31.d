/root/repo/target/debug/deps/tbl_order-e494cdfdce6deb31.d: crates/bench/src/bin/tbl_order.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_order-e494cdfdce6deb31.rmeta: crates/bench/src/bin/tbl_order.rs Cargo.toml

crates/bench/src/bin/tbl_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
