/root/repo/target/debug/deps/failure_injection-43f37b3e3272f555.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-43f37b3e3272f555: tests/failure_injection.rs

tests/failure_injection.rs:
