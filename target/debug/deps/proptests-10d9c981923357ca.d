/root/repo/target/debug/deps/proptests-10d9c981923357ca.d: crates/tape/tests/proptests.rs

/root/repo/target/debug/deps/proptests-10d9c981923357ca: crates/tape/tests/proptests.rs

crates/tape/tests/proptests.rs:
