/root/repo/target/debug/deps/tbl_order-baa213c7799c4233.d: crates/bench/src/bin/tbl_order.rs

/root/repo/target/debug/deps/tbl_order-baa213c7799c4233: crates/bench/src/bin/tbl_order.rs

crates/bench/src/bin/tbl_order.rs:
