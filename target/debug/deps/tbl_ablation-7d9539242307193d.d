/root/repo/target/debug/deps/tbl_ablation-7d9539242307193d.d: crates/bench/src/bin/tbl_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_ablation-7d9539242307193d.rmeta: crates/bench/src/bin/tbl_ablation.rs Cargo.toml

crates/bench/src/bin/tbl_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
