/root/repo/target/debug/deps/stress-b6a36f6cecc083f2.d: crates/mpirt/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-b6a36f6cecc083f2.rmeta: crates/mpirt/tests/stress.rs Cargo.toml

crates/mpirt/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
