/root/repo/target/debug/deps/tbl_small_file-610504cc57ca1317.d: crates/bench/src/bin/tbl_small_file.rs

/root/repo/target/debug/deps/tbl_small_file-610504cc57ca1317: crates/bench/src/bin/tbl_small_file.rs

crates/bench/src/bin/tbl_small_file.rs:
