/root/repo/target/debug/deps/tbl_ablation-e93fa99dc08a0038.d: crates/bench/src/bin/tbl_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_ablation-e93fa99dc08a0038.rmeta: crates/bench/src/bin/tbl_ablation.rs Cargo.toml

crates/bench/src/bin/tbl_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
