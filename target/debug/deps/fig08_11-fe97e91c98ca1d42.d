/root/repo/target/debug/deps/fig08_11-fe97e91c98ca1d42.d: crates/bench/src/bin/fig08_11.rs

/root/repo/target/debug/deps/fig08_11-fe97e91c98ca1d42: crates/bench/src/bin/fig08_11.rs

crates/bench/src/bin/fig08_11.rs:
