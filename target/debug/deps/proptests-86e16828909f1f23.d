/root/repo/target/debug/deps/proptests-86e16828909f1f23.d: crates/hsm/tests/proptests.rs

/root/repo/target/debug/deps/proptests-86e16828909f1f23: crates/hsm/tests/proptests.rs

crates/hsm/tests/proptests.rs:
