/root/repo/target/debug/deps/copra_mpirt-972b4736a3a516cb.d: crates/mpirt/src/lib.rs

/root/repo/target/debug/deps/copra_mpirt-972b4736a3a516cb: crates/mpirt/src/lib.rs

crates/mpirt/src/lib.rs:
