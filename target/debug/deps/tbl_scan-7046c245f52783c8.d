/root/repo/target/debug/deps/tbl_scan-7046c245f52783c8.d: crates/bench/src/bin/tbl_scan.rs

/root/repo/target/debug/deps/tbl_scan-7046c245f52783c8: crates/bench/src/bin/tbl_scan.rs

crates/bench/src/bin/tbl_scan.rs:
