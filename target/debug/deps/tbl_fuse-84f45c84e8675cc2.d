/root/repo/target/debug/deps/tbl_fuse-84f45c84e8675cc2.d: crates/bench/src/bin/tbl_fuse.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_fuse-84f45c84e8675cc2.rmeta: crates/bench/src/bin/tbl_fuse.rs Cargo.toml

crates/bench/src/bin/tbl_fuse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
