/root/repo/target/debug/deps/tbl_order-e2dfcd914f2aa3e9.d: crates/bench/src/bin/tbl_order.rs

/root/repo/target/debug/deps/tbl_order-e2dfcd914f2aa3e9: crates/bench/src/bin/tbl_order.rs

crates/bench/src/bin/tbl_order.rs:
