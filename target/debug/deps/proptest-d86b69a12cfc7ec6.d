/root/repo/target/debug/deps/proptest-d86b69a12cfc7ec6.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d86b69a12cfc7ec6.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
