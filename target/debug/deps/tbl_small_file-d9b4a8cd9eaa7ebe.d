/root/repo/target/debug/deps/tbl_small_file-d9b4a8cd9eaa7ebe.d: crates/bench/src/bin/tbl_small_file.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_small_file-d9b4a8cd9eaa7ebe.rmeta: crates/bench/src/bin/tbl_small_file.rs Cargo.toml

crates/bench/src/bin/tbl_small_file.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
