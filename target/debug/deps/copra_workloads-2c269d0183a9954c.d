/root/repo/target/debug/deps/copra_workloads-2c269d0183a9954c.d: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/open_science.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_workloads-2c269d0183a9954c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/open_science.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/generators.rs:
crates/workloads/src/open_science.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
