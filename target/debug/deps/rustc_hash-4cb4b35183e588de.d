/root/repo/target/debug/deps/rustc_hash-4cb4b35183e588de.d: vendor/rustc-hash/src/lib.rs

/root/repo/target/debug/deps/librustc_hash-4cb4b35183e588de.rmeta: vendor/rustc-hash/src/lib.rs

vendor/rustc-hash/src/lib.rs:
