/root/repo/target/debug/deps/copra_pftool-6d29948392789c06.d: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs

/root/repo/target/debug/deps/libcopra_pftool-6d29948392789c06.rlib: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs

/root/repo/target/debug/deps/libcopra_pftool-6d29948392789c06.rmeta: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs

crates/pftool/src/lib.rs:
crates/pftool/src/api.rs:
crates/pftool/src/config.rs:
crates/pftool/src/engine.rs:
crates/pftool/src/msg.rs:
crates/pftool/src/queues.rs:
crates/pftool/src/report.rs:
crates/pftool/src/view.rs:
