/root/repo/target/debug/deps/copra_bench-477bd0b0a3ea2b01.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_bench-477bd0b0a3ea2b01.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
