/root/repo/target/debug/deps/proptests-104435ea80019336.d: crates/pftool/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-104435ea80019336.rmeta: crates/pftool/tests/proptests.rs Cargo.toml

crates/pftool/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
