/root/repo/target/debug/deps/tbl_thrash-ff4ba83a4fcbc9dd.d: crates/bench/src/bin/tbl_thrash.rs

/root/repo/target/debug/deps/tbl_thrash-ff4ba83a4fcbc9dd: crates/bench/src/bin/tbl_thrash.rs

crates/bench/src/bin/tbl_thrash.rs:
