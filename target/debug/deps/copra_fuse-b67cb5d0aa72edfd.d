/root/repo/target/debug/deps/copra_fuse-b67cb5d0aa72edfd.d: crates/fuselayer/src/lib.rs

/root/repo/target/debug/deps/libcopra_fuse-b67cb5d0aa72edfd.rlib: crates/fuselayer/src/lib.rs

/root/repo/target/debug/deps/libcopra_fuse-b67cb5d0aa72edfd.rmeta: crates/fuselayer/src/lib.rs

crates/fuselayer/src/lib.rs:
