/root/repo/target/debug/deps/copra_pftool-92320c166e1cafcf.d: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs

/root/repo/target/debug/deps/libcopra_pftool-92320c166e1cafcf.rlib: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs

/root/repo/target/debug/deps/libcopra_pftool-92320c166e1cafcf.rmeta: crates/pftool/src/lib.rs crates/pftool/src/api.rs crates/pftool/src/config.rs crates/pftool/src/engine.rs crates/pftool/src/msg.rs crates/pftool/src/queues.rs crates/pftool/src/report.rs crates/pftool/src/view.rs

crates/pftool/src/lib.rs:
crates/pftool/src/api.rs:
crates/pftool/src/config.rs:
crates/pftool/src/engine.rs:
crates/pftool/src/msg.rs:
crates/pftool/src/queues.rs:
crates/pftool/src/report.rs:
crates/pftool/src/view.rs:
