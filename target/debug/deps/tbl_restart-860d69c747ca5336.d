/root/repo/target/debug/deps/tbl_restart-860d69c747ca5336.d: crates/bench/src/bin/tbl_restart.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_restart-860d69c747ca5336.rmeta: crates/bench/src/bin/tbl_restart.rs Cargo.toml

crates/bench/src/bin/tbl_restart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
