/root/repo/target/debug/deps/copra_vfs-c711abdbadc7bdfa.d: crates/vfs/src/lib.rs crates/vfs/src/content.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs crates/vfs/src/inode.rs crates/vfs/src/path.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_vfs-c711abdbadc7bdfa.rmeta: crates/vfs/src/lib.rs crates/vfs/src/content.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs crates/vfs/src/inode.rs crates/vfs/src/path.rs Cargo.toml

crates/vfs/src/lib.rs:
crates/vfs/src/content.rs:
crates/vfs/src/error.rs:
crates/vfs/src/fs.rs:
crates/vfs/src/inode.rs:
crates/vfs/src/path.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
