/root/repo/target/debug/deps/copra_obs-4cff789c170bbb2c.d: crates/obs/src/lib.rs crates/obs/src/events.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs

/root/repo/target/debug/deps/libcopra_obs-4cff789c170bbb2c.rlib: crates/obs/src/lib.rs crates/obs/src/events.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs

/root/repo/target/debug/deps/libcopra_obs-4cff789c170bbb2c.rmeta: crates/obs/src/lib.rs crates/obs/src/events.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs

crates/obs/src/lib.rs:
crates/obs/src/events.rs:
crates/obs/src/metrics.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
