/root/repo/target/debug/deps/tbl_thrash-5d4a86bf72fac13b.d: crates/bench/src/bin/tbl_thrash.rs Cargo.toml

/root/repo/target/debug/deps/libtbl_thrash-5d4a86bf72fac13b.rmeta: crates/bench/src/bin/tbl_thrash.rs Cargo.toml

crates/bench/src/bin/tbl_thrash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
