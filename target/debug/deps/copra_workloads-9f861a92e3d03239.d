/root/repo/target/debug/deps/copra_workloads-9f861a92e3d03239.d: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/open_science.rs

/root/repo/target/debug/deps/copra_workloads-9f861a92e3d03239: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/open_science.rs

crates/workloads/src/lib.rs:
crates/workloads/src/generators.rs:
crates/workloads/src/open_science.rs:
