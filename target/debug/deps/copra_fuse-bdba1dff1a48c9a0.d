/root/repo/target/debug/deps/copra_fuse-bdba1dff1a48c9a0.d: crates/fuselayer/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcopra_fuse-bdba1dff1a48c9a0.rmeta: crates/fuselayer/src/lib.rs Cargo.toml

crates/fuselayer/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
