/root/repo/target/debug/deps/serde_json-6ff1b17ac504b082.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-6ff1b17ac504b082.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
