/root/repo/target/debug/deps/copra_pfs-67d3a375242826ac.d: crates/pfs/src/lib.rs crates/pfs/src/glob.rs crates/pfs/src/hsmstate.rs crates/pfs/src/pfs.rs crates/pfs/src/policy.rs crates/pfs/src/pool.rs

/root/repo/target/debug/deps/copra_pfs-67d3a375242826ac: crates/pfs/src/lib.rs crates/pfs/src/glob.rs crates/pfs/src/hsmstate.rs crates/pfs/src/pfs.rs crates/pfs/src/policy.rs crates/pfs/src/pool.rs

crates/pfs/src/lib.rs:
crates/pfs/src/glob.rs:
crates/pfs/src/hsmstate.rs:
crates/pfs/src/pfs.rs:
crates/pfs/src/policy.rs:
crates/pfs/src/pool.rs:
