/root/repo/target/debug/deps/proptests-dc0de162d3bd790c.d: crates/hsm/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-dc0de162d3bd790c.rmeta: crates/hsm/tests/proptests.rs Cargo.toml

crates/hsm/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
