/root/repo/target/debug/deps/copra_tape-3c3d896d73f19ecf.d: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs

/root/repo/target/debug/deps/libcopra_tape-3c3d896d73f19ecf.rlib: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs

/root/repo/target/debug/deps/libcopra_tape-3c3d896d73f19ecf.rmeta: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs

crates/tape/src/lib.rs:
crates/tape/src/cartridge.rs:
crates/tape/src/library.rs:
crates/tape/src/timing.rs:
