/root/repo/target/debug/deps/tbl_lanfree-5b3e6a42bba9e207.d: crates/bench/src/bin/tbl_lanfree.rs

/root/repo/target/debug/deps/tbl_lanfree-5b3e6a42bba9e207: crates/bench/src/bin/tbl_lanfree.rs

crates/bench/src/bin/tbl_lanfree.rs:
