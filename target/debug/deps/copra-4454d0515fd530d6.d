/root/repo/target/debug/deps/copra-4454d0515fd530d6.d: src/lib.rs

/root/repo/target/debug/deps/libcopra-4454d0515fd530d6.rlib: src/lib.rs

/root/repo/target/debug/deps/libcopra-4454d0515fd530d6.rmeta: src/lib.rs

src/lib.rs:
