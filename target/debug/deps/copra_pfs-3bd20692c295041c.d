/root/repo/target/debug/deps/copra_pfs-3bd20692c295041c.d: crates/pfs/src/lib.rs crates/pfs/src/glob.rs crates/pfs/src/hsmstate.rs crates/pfs/src/pfs.rs crates/pfs/src/policy.rs crates/pfs/src/pool.rs

/root/repo/target/debug/deps/libcopra_pfs-3bd20692c295041c.rlib: crates/pfs/src/lib.rs crates/pfs/src/glob.rs crates/pfs/src/hsmstate.rs crates/pfs/src/pfs.rs crates/pfs/src/policy.rs crates/pfs/src/pool.rs

/root/repo/target/debug/deps/libcopra_pfs-3bd20692c295041c.rmeta: crates/pfs/src/lib.rs crates/pfs/src/glob.rs crates/pfs/src/hsmstate.rs crates/pfs/src/pfs.rs crates/pfs/src/policy.rs crates/pfs/src/pool.rs

crates/pfs/src/lib.rs:
crates/pfs/src/glob.rs:
crates/pfs/src/hsmstate.rs:
crates/pfs/src/pfs.rs:
crates/pfs/src/policy.rs:
crates/pfs/src/pool.rs:
