/root/repo/target/debug/deps/copra_metadb-9525d3ece664340d.d: crates/metadb/src/lib.rs crates/metadb/src/table.rs crates/metadb/src/tsm.rs

/root/repo/target/debug/deps/copra_metadb-9525d3ece664340d: crates/metadb/src/lib.rs crates/metadb/src/table.rs crates/metadb/src/tsm.rs

crates/metadb/src/lib.rs:
crates/metadb/src/table.rs:
crates/metadb/src/tsm.rs:
