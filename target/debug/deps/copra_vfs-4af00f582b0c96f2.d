/root/repo/target/debug/deps/copra_vfs-4af00f582b0c96f2.d: crates/vfs/src/lib.rs crates/vfs/src/content.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs crates/vfs/src/inode.rs crates/vfs/src/path.rs

/root/repo/target/debug/deps/copra_vfs-4af00f582b0c96f2: crates/vfs/src/lib.rs crates/vfs/src/content.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs crates/vfs/src/inode.rs crates/vfs/src/path.rs

crates/vfs/src/lib.rs:
crates/vfs/src/content.rs:
crates/vfs/src/error.rs:
crates/vfs/src/fs.rs:
crates/vfs/src/inode.rs:
crates/vfs/src/path.rs:
