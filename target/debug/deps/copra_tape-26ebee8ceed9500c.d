/root/repo/target/debug/deps/copra_tape-26ebee8ceed9500c.d: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs

/root/repo/target/debug/deps/copra_tape-26ebee8ceed9500c: crates/tape/src/lib.rs crates/tape/src/cartridge.rs crates/tape/src/library.rs crates/tape/src/timing.rs

crates/tape/src/lib.rs:
crates/tape/src/cartridge.rs:
crates/tape/src/library.rs:
crates/tape/src/timing.rs:
