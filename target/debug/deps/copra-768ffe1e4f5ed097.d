/root/repo/target/debug/deps/copra-768ffe1e4f5ed097.d: src/lib.rs

/root/repo/target/debug/deps/copra-768ffe1e4f5ed097: src/lib.rs

src/lib.rs:
