/root/repo/target/debug/deps/copra_core-68bc4ab732165fde.d: crates/core/src/lib.rs crates/core/src/jail.rs crates/core/src/migrator.rs crates/core/src/obs.rs crates/core/src/search.rs crates/core/src/shell.rs crates/core/src/syncdel.rs crates/core/src/system.rs crates/core/src/trashcan.rs

/root/repo/target/debug/deps/copra_core-68bc4ab732165fde: crates/core/src/lib.rs crates/core/src/jail.rs crates/core/src/migrator.rs crates/core/src/obs.rs crates/core/src/search.rs crates/core/src/shell.rs crates/core/src/syncdel.rs crates/core/src/system.rs crates/core/src/trashcan.rs

crates/core/src/lib.rs:
crates/core/src/jail.rs:
crates/core/src/migrator.rs:
crates/core/src/obs.rs:
crates/core/src/search.rs:
crates/core/src/shell.rs:
crates/core/src/syncdel.rs:
crates/core/src/system.rs:
crates/core/src/trashcan.rs:
