/root/repo/target/debug/deps/proptests-810ce3dfd6efdd80.d: crates/vfs/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-810ce3dfd6efdd80.rmeta: crates/vfs/tests/proptests.rs Cargo.toml

crates/vfs/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
