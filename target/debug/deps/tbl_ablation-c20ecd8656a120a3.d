/root/repo/target/debug/deps/tbl_ablation-c20ecd8656a120a3.d: crates/bench/src/bin/tbl_ablation.rs

/root/repo/target/debug/deps/tbl_ablation-c20ecd8656a120a3: crates/bench/src/bin/tbl_ablation.rs

crates/bench/src/bin/tbl_ablation.rs:
