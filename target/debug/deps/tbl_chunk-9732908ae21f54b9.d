/root/repo/target/debug/deps/tbl_chunk-9732908ae21f54b9.d: crates/bench/src/bin/tbl_chunk.rs

/root/repo/target/debug/deps/tbl_chunk-9732908ae21f54b9: crates/bench/src/bin/tbl_chunk.rs

crates/bench/src/bin/tbl_chunk.rs:
