/root/repo/target/debug/deps/copra_simtime-26a0c58d230e0e0f.d: crates/simtime/src/lib.rs crates/simtime/src/clock.rs crates/simtime/src/pool.rs crates/simtime/src/rate.rs crates/simtime/src/time.rs crates/simtime/src/timeline.rs

/root/repo/target/debug/deps/copra_simtime-26a0c58d230e0e0f: crates/simtime/src/lib.rs crates/simtime/src/clock.rs crates/simtime/src/pool.rs crates/simtime/src/rate.rs crates/simtime/src/time.rs crates/simtime/src/timeline.rs

crates/simtime/src/lib.rs:
crates/simtime/src/clock.rs:
crates/simtime/src/pool.rs:
crates/simtime/src/rate.rs:
crates/simtime/src/time.rs:
crates/simtime/src/timeline.rs:
