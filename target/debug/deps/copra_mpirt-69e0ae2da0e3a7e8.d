/root/repo/target/debug/deps/copra_mpirt-69e0ae2da0e3a7e8.d: crates/mpirt/src/lib.rs

/root/repo/target/debug/deps/libcopra_mpirt-69e0ae2da0e3a7e8.rlib: crates/mpirt/src/lib.rs

/root/repo/target/debug/deps/libcopra_mpirt-69e0ae2da0e3a7e8.rmeta: crates/mpirt/src/lib.rs

crates/mpirt/src/lib.rs:
