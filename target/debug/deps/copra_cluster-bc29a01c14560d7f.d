/root/repo/target/debug/deps/copra_cluster-bc29a01c14560d7f.d: crates/cluster/src/lib.rs crates/cluster/src/fta.rs crates/cluster/src/loadmgr.rs crates/cluster/src/moab.rs

/root/repo/target/debug/deps/copra_cluster-bc29a01c14560d7f: crates/cluster/src/lib.rs crates/cluster/src/fta.rs crates/cluster/src/loadmgr.rs crates/cluster/src/moab.rs

crates/cluster/src/lib.rs:
crates/cluster/src/fta.rs:
crates/cluster/src/loadmgr.rs:
crates/cluster/src/moab.rs:
