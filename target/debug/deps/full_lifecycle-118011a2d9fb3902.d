/root/repo/target/debug/deps/full_lifecycle-118011a2d9fb3902.d: tests/full_lifecycle.rs

/root/repo/target/debug/deps/full_lifecycle-118011a2d9fb3902: tests/full_lifecycle.rs

tests/full_lifecycle.rs:
