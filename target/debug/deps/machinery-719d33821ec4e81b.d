/root/repo/target/debug/deps/machinery-719d33821ec4e81b.d: crates/bench/benches/machinery.rs Cargo.toml

/root/repo/target/debug/deps/libmachinery-719d33821ec4e81b.rmeta: crates/bench/benches/machinery.rs Cargo.toml

crates/bench/benches/machinery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
