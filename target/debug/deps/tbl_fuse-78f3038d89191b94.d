/root/repo/target/debug/deps/tbl_fuse-78f3038d89191b94.d: crates/bench/src/bin/tbl_fuse.rs

/root/repo/target/debug/deps/tbl_fuse-78f3038d89191b94: crates/bench/src/bin/tbl_fuse.rs

crates/bench/src/bin/tbl_fuse.rs:
