/root/repo/target/debug/deps/copra-54641e4ea915b19a.d: src/lib.rs

/root/repo/target/debug/deps/copra-54641e4ea915b19a: src/lib.rs

src/lib.rs:
