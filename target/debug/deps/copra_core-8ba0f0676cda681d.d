/root/repo/target/debug/deps/copra_core-8ba0f0676cda681d.d: crates/core/src/lib.rs crates/core/src/jail.rs crates/core/src/migrator.rs crates/core/src/search.rs crates/core/src/shell.rs crates/core/src/syncdel.rs crates/core/src/system.rs crates/core/src/trashcan.rs

/root/repo/target/debug/deps/libcopra_core-8ba0f0676cda681d.rlib: crates/core/src/lib.rs crates/core/src/jail.rs crates/core/src/migrator.rs crates/core/src/search.rs crates/core/src/shell.rs crates/core/src/syncdel.rs crates/core/src/system.rs crates/core/src/trashcan.rs

/root/repo/target/debug/deps/libcopra_core-8ba0f0676cda681d.rmeta: crates/core/src/lib.rs crates/core/src/jail.rs crates/core/src/migrator.rs crates/core/src/search.rs crates/core/src/shell.rs crates/core/src/syncdel.rs crates/core/src/system.rs crates/core/src/trashcan.rs

crates/core/src/lib.rs:
crates/core/src/jail.rs:
crates/core/src/migrator.rs:
crates/core/src/search.rs:
crates/core/src/shell.rs:
crates/core/src/syncdel.rs:
crates/core/src/system.rs:
crates/core/src/trashcan.rs:
