/root/repo/target/debug/deps/failure_injection-2d2671ebe6f54034.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-2d2671ebe6f54034: tests/failure_injection.rs

tests/failure_injection.rs:
