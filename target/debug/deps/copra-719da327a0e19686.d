/root/repo/target/debug/deps/copra-719da327a0e19686.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcopra-719da327a0e19686.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
