/root/repo/target/debug/deps/tbl_fuse-6ee6160071de41a9.d: crates/bench/src/bin/tbl_fuse.rs

/root/repo/target/debug/deps/tbl_fuse-6ee6160071de41a9: crates/bench/src/bin/tbl_fuse.rs

crates/bench/src/bin/tbl_fuse.rs:
