/root/repo/target/debug/examples/quickstart-f85ddc5709136fa4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f85ddc5709136fa4: examples/quickstart.rs

examples/quickstart.rs:
