/root/repo/target/debug/examples/small_file_aggregation-9d8ae80920f974a1.d: examples/small_file_aggregation.rs

/root/repo/target/debug/examples/small_file_aggregation-9d8ae80920f974a1: examples/small_file_aggregation.rs

examples/small_file_aggregation.rs:
