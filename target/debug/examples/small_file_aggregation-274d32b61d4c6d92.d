/root/repo/target/debug/examples/small_file_aggregation-274d32b61d4c6d92.d: examples/small_file_aggregation.rs Cargo.toml

/root/repo/target/debug/examples/libsmall_file_aggregation-274d32b61d4c6d92.rmeta: examples/small_file_aggregation.rs Cargo.toml

examples/small_file_aggregation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
