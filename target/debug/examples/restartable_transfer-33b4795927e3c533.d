/root/repo/target/debug/examples/restartable_transfer-33b4795927e3c533.d: examples/restartable_transfer.rs

/root/repo/target/debug/examples/restartable_transfer-33b4795927e3c533: examples/restartable_transfer.rs

examples/restartable_transfer.rs:
