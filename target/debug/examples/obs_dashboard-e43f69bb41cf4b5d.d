/root/repo/target/debug/examples/obs_dashboard-e43f69bb41cf4b5d.d: examples/obs_dashboard.rs

/root/repo/target/debug/examples/obs_dashboard-e43f69bb41cf4b5d: examples/obs_dashboard.rs

examples/obs_dashboard.rs:
