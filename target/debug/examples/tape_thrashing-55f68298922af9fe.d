/root/repo/target/debug/examples/tape_thrashing-55f68298922af9fe.d: examples/tape_thrashing.rs Cargo.toml

/root/repo/target/debug/examples/libtape_thrashing-55f68298922af9fe.rmeta: examples/tape_thrashing.rs Cargo.toml

examples/tape_thrashing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
