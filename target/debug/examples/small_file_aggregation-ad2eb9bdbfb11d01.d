/root/repo/target/debug/examples/small_file_aggregation-ad2eb9bdbfb11d01.d: examples/small_file_aggregation.rs

/root/repo/target/debug/examples/small_file_aggregation-ad2eb9bdbfb11d01: examples/small_file_aggregation.rs

examples/small_file_aggregation.rs:
