/root/repo/target/debug/examples/open_science_campaign-6d43de7a24051aa0.d: examples/open_science_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libopen_science_campaign-6d43de7a24051aa0.rmeta: examples/open_science_campaign.rs Cargo.toml

examples/open_science_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
