/root/repo/target/debug/examples/obs_dashboard-da61f1bbecac1f7e.d: examples/obs_dashboard.rs Cargo.toml

/root/repo/target/debug/examples/libobs_dashboard-da61f1bbecac1f7e.rmeta: examples/obs_dashboard.rs Cargo.toml

examples/obs_dashboard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
