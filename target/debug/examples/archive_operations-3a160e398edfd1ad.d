/root/repo/target/debug/examples/archive_operations-3a160e398edfd1ad.d: examples/archive_operations.rs

/root/repo/target/debug/examples/archive_operations-3a160e398edfd1ad: examples/archive_operations.rs

examples/archive_operations.rs:
