/root/repo/target/debug/examples/tape_thrashing-a818c72837f4a931.d: examples/tape_thrashing.rs

/root/repo/target/debug/examples/tape_thrashing-a818c72837f4a931: examples/tape_thrashing.rs

examples/tape_thrashing.rs:
