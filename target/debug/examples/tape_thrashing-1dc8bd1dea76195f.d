/root/repo/target/debug/examples/tape_thrashing-1dc8bd1dea76195f.d: examples/tape_thrashing.rs

/root/repo/target/debug/examples/tape_thrashing-1dc8bd1dea76195f: examples/tape_thrashing.rs

examples/tape_thrashing.rs:
