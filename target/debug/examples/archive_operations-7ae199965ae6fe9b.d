/root/repo/target/debug/examples/archive_operations-7ae199965ae6fe9b.d: examples/archive_operations.rs

/root/repo/target/debug/examples/archive_operations-7ae199965ae6fe9b: examples/archive_operations.rs

examples/archive_operations.rs:
