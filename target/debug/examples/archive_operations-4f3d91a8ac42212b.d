/root/repo/target/debug/examples/archive_operations-4f3d91a8ac42212b.d: examples/archive_operations.rs Cargo.toml

/root/repo/target/debug/examples/libarchive_operations-4f3d91a8ac42212b.rmeta: examples/archive_operations.rs Cargo.toml

examples/archive_operations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
