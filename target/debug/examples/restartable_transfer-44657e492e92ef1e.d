/root/repo/target/debug/examples/restartable_transfer-44657e492e92ef1e.d: examples/restartable_transfer.rs

/root/repo/target/debug/examples/restartable_transfer-44657e492e92ef1e: examples/restartable_transfer.rs

examples/restartable_transfer.rs:
