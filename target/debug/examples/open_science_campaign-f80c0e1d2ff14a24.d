/root/repo/target/debug/examples/open_science_campaign-f80c0e1d2ff14a24.d: examples/open_science_campaign.rs

/root/repo/target/debug/examples/open_science_campaign-f80c0e1d2ff14a24: examples/open_science_campaign.rs

examples/open_science_campaign.rs:
