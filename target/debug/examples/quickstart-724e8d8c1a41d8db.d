/root/repo/target/debug/examples/quickstart-724e8d8c1a41d8db.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-724e8d8c1a41d8db.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
