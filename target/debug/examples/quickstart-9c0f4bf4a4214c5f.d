/root/repo/target/debug/examples/quickstart-9c0f4bf4a4214c5f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9c0f4bf4a4214c5f: examples/quickstart.rs

examples/quickstart.rs:
