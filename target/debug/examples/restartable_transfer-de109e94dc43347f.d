/root/repo/target/debug/examples/restartable_transfer-de109e94dc43347f.d: examples/restartable_transfer.rs Cargo.toml

/root/repo/target/debug/examples/librestartable_transfer-de109e94dc43347f.rmeta: examples/restartable_transfer.rs Cargo.toml

examples/restartable_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
