/root/repo/target/debug/examples/open_science_campaign-286371b35cf2c018.d: examples/open_science_campaign.rs

/root/repo/target/debug/examples/open_science_campaign-286371b35cf2c018: examples/open_science_campaign.rs

examples/open_science_campaign.rs:
